#include "src/hamming/schemas.h"

#include <algorithm>
#include <sstream>

#include "src/common/combinatorics.h"

namespace mrcost::hamming {

// ---------------------------------------------------------------- Pairs

PairsSchema::PairsSchema(int b) : b_(b) { MRCOST_CHECK(b >= 1 && b <= 32); }

std::uint64_t PairsSchema::num_reducers() const {
  return (std::uint64_t{1} << b_) * static_cast<std::uint64_t>(b_);
}

std::vector<core::ReducerId> PairsSchema::ReducersOfInput(
    core::InputId input) const {
  // The pair {u, u ^ (1<<i)} is owned by the endpoint with bit i clear.
  std::vector<core::ReducerId> out;
  out.reserve(b_);
  for (int i = 0; i < b_; ++i) {
    const BitString owner = input & ~(BitString{1} << i);
    out.push_back(owner * b_ + i);
  }
  return out;
}

// -------------------------------------------------------- SingleReducer

SingleReducerSchema::SingleReducerSchema(std::uint64_t num_inputs)
    : num_inputs_(num_inputs) {
  (void)num_inputs_;
}

// ------------------------------------------------------------ Splitting

common::Result<SplittingSchema> SplittingSchema::Make(int b, int c) {
  if (b < 1 || b > 32) {
    return common::Status::InvalidArgument("SplittingSchema: need 1<=b<=32");
  }
  if (c < 1 || c > b || b % c != 0) {
    std::ostringstream os;
    os << "SplittingSchema: c=" << c << " must divide b=" << b;
    return common::Status::InvalidArgument(os.str());
  }
  return SplittingSchema(b, c);
}

std::string SplittingSchema::name() const {
  std::ostringstream os;
  os << "hamming1-splitting(c=" << c_ << ")";
  return os.str();
}

std::uint64_t SplittingSchema::num_reducers() const {
  // c groups, each indexed by the b - b/c remaining bits.
  return static_cast<std::uint64_t>(c_) << (b_ - b_ / c_);
}

std::vector<core::ReducerId> SplittingSchema::ReducersOfInput(
    core::InputId input) const {
  const int seg = b_ / c_;
  const std::uint64_t per_group = std::uint64_t{1} << (b_ - seg);
  std::vector<core::ReducerId> out;
  out.reserve(c_);
  for (int i = 0; i < c_; ++i) {
    const std::uint64_t residual =
        common::RemoveBitField(input, i * seg, seg);
    out.push_back(static_cast<std::uint64_t>(i) * per_group + residual);
  }
  return out;
}

// --------------------------------------------------- UnevenSplitting

common::Result<UnevenSplittingSchema> UnevenSplittingSchema::Make(int b,
                                                                  int c) {
  if (b < 1 || b > 32) {
    return common::Status::InvalidArgument(
        "UnevenSplittingSchema: need 1<=b<=32");
  }
  if (c < 1 || c > b) {
    return common::Status::InvalidArgument(
        "UnevenSplittingSchema: need 1 <= c <= b");
  }
  return UnevenSplittingSchema(b, c);
}

int UnevenSplittingSchema::SegmentLength(int i) const {
  // The first (b mod c) segments take the extra bit.
  const int base = b_ / c_;
  return i < b_ % c_ ? base + 1 : base;
}

int UnevenSplittingSchema::SegmentStart(int i) const {
  const int base = b_ / c_;
  const int longer = std::min(i, b_ % c_);
  return longer * (base + 1) + (i - longer) * base;
}

std::string UnevenSplittingSchema::name() const {
  std::ostringstream os;
  os << "hamming1-splitting-uneven(c=" << c_ << ")";
  return os.str();
}

std::uint64_t UnevenSplittingSchema::num_reducers() const {
  // Group i is indexed by b - len(i) residual bits; sum over groups.
  std::uint64_t total = 0;
  for (int i = 0; i < c_; ++i) {
    total += std::uint64_t{1} << (b_ - SegmentLength(i));
  }
  return total;
}

std::vector<core::ReducerId> UnevenSplittingSchema::ReducersOfInput(
    core::InputId input) const {
  std::vector<core::ReducerId> out;
  out.reserve(c_);
  std::uint64_t group_base = 0;
  for (int i = 0; i < c_; ++i) {
    const int len = SegmentLength(i);
    const std::uint64_t residual =
        common::RemoveBitField(input, SegmentStart(i), len);
    out.push_back(group_base + residual);
    group_base += std::uint64_t{1} << (b_ - len);
  }
  return out;
}

// ------------------------------------------------------------- Weights

namespace internal {

int WeightGroup(int weight, int k, int groups) {
  const int g = weight / k;
  return g >= groups ? groups - 1 : g;
}

bool IsLowestInGroup(int weight, int k, int groups) {
  return weight % k == 0 && weight / k < groups;
}

}  // namespace internal

common::Result<Weight2DSchema> Weight2DSchema::Make(int b, int k) {
  if (b < 2 || b > 32 || b % 2 != 0) {
    return common::Status::InvalidArgument(
        "Weight2DSchema: need even b in [2,32]");
  }
  if (k < 1 || (b / 2) % k != 0) {
    std::ostringstream os;
    os << "Weight2DSchema: k=" << k << " must divide b/2=" << b / 2;
    return common::Status::InvalidArgument(os.str());
  }
  return Weight2DSchema(b, k, (b / 2) / k);
}

std::string Weight2DSchema::name() const {
  std::ostringstream os;
  os << "hamming1-weight2d(k=" << k_ << ")";
  return os.str();
}

std::uint64_t Weight2DSchema::num_reducers() const {
  return static_cast<std::uint64_t>(groups_) * groups_;
}

std::vector<core::ReducerId> Weight2DSchema::ReducersOfInput(
    core::InputId input) const {
  const int half = b_ / 2;
  const int lw = SegmentWeight(input, 0, half);
  const int rw = SegmentWeight(input, half, half);
  const int gl = internal::WeightGroup(lw, k_, groups_);
  const int gr = internal::WeightGroup(rw, k_, groups_);
  std::vector<core::ReducerId> out;
  out.push_back(static_cast<std::uint64_t>(gl) * groups_ + gr);
  // Border replication (Fig. 2): a string at the lowest weight of its
  // group must also reach the cell below, in each half independently. A
  // distance-1 pair differs in exactly one half, so diagonal neighbors are
  // never needed.
  if (gl > 0 && internal::IsLowestInGroup(lw, k_, groups_)) {
    out.push_back(static_cast<std::uint64_t>(gl - 1) * groups_ + gr);
  }
  if (gr > 0 && internal::IsLowestInGroup(rw, k_, groups_)) {
    out.push_back(static_cast<std::uint64_t>(gl) * groups_ + (gr - 1));
  }
  return out;
}

common::Result<WeightKDSchema> WeightKDSchema::Make(int b, int d, int k) {
  if (b < 1 || b > 32) {
    return common::Status::InvalidArgument("WeightKDSchema: need 1<=b<=32");
  }
  if (d < 1 || d > b || b % d != 0) {
    return common::Status::InvalidArgument(
        "WeightKDSchema: d must divide b");
  }
  const int piece = b / d;
  if (k < 1 || piece % k != 0) {
    std::ostringstream os;
    os << "WeightKDSchema: k=" << k << " must divide b/d=" << piece;
    return common::Status::InvalidArgument(os.str());
  }
  return WeightKDSchema(b, d, k, piece / k);
}

std::string WeightKDSchema::name() const {
  std::ostringstream os;
  os << "hamming1-weight" << d_ << "d(k=" << k_ << ")";
  return os.str();
}

std::uint64_t WeightKDSchema::num_reducers() const {
  std::uint64_t n = 1;
  for (int i = 0; i < d_; ++i) n *= groups_;
  return n;
}

std::vector<core::ReducerId> WeightKDSchema::ReducersOfInput(
    core::InputId input) const {
  const int piece = b_ / d_;
  std::vector<int> coord(d_);
  std::vector<int> weight(d_);
  for (int f = 0; f < d_; ++f) {
    weight[f] = SegmentWeight(input, f * piece, piece);
    coord[f] = internal::WeightGroup(weight[f], k_, groups_);
  }
  auto cell_id = [&](const std::vector<int>& c) {
    std::uint64_t id = 0;
    for (int f = 0; f < d_; ++f) id = id * groups_ + c[f];
    return id;
  };
  std::vector<core::ReducerId> out;
  out.push_back(cell_id(coord));
  for (int f = 0; f < d_; ++f) {
    if (coord[f] > 0 && internal::IsLowestInGroup(weight[f], k_, groups_)) {
      std::vector<int> neighbor = coord;
      --neighbor[f];
      out.push_back(cell_id(neighbor));
    }
  }
  return out;
}

// ----------------------------------------------------------------- Ball

BallSchema::BallSchema(int b, bool include_center)
    : b_(b), include_center_(include_center) {
  MRCOST_CHECK(b >= 1 && b <= 24);
}

std::string BallSchema::name() const {
  std::ostringstream os;
  os << "hamming-ball2" << (include_center_ ? "+center" : "");
  return os.str();
}

std::vector<core::ReducerId> BallSchema::ReducersOfInput(
    core::InputId input) const {
  std::vector<core::ReducerId> out;
  out.reserve(b_ + (include_center_ ? 1 : 0));
  for (int i = 0; i < b_; ++i) {
    out.push_back(input ^ (BitString{1} << i));
  }
  if (include_center_) out.push_back(input);
  return out;
}

// ------------------------------------------------- Splitting, distance d

common::Result<SplittingDistanceDSchema> SplittingDistanceDSchema::Make(
    int b, int k, int d) {
  if (b < 1 || b > 32) {
    return common::Status::InvalidArgument(
        "SplittingDistanceDSchema: need 1<=b<=32");
  }
  if (k < 2 || k > b || b % k != 0) {
    return common::Status::InvalidArgument(
        "SplittingDistanceDSchema: k must divide b, k >= 2");
  }
  if (d < 1 || d >= k) {
    return common::Status::InvalidArgument(
        "SplittingDistanceDSchema: need 1 <= d < k");
  }
  return SplittingDistanceDSchema(b, k, d);
}

std::string SplittingDistanceDSchema::name() const {
  std::ostringstream os;
  os << "hamming" << d_ << "-splitting(k=" << k_ << ")";
  return os.str();
}

std::uint64_t SplittingDistanceDSchema::replication() const {
  return common::BinomialExact(k_, d_);
}

std::uint64_t SplittingDistanceDSchema::num_reducers() const {
  const int seg = b_ / k_;
  return replication() << (b_ - d_ * seg);
}

core::ReducerId SplittingDistanceDSchema::ReducerFor(
    BitString w, const std::vector<int>& subset) const {
  const int seg = b_ / k_;
  // Delete the chosen segments from highest position to lowest so earlier
  // removals do not shift later ones.
  BitString residual = w;
  for (auto it = subset.rbegin(); it != subset.rend(); ++it) {
    residual = common::RemoveBitField(residual, *it * seg, seg);
  }
  const std::uint64_t rank = common::CombinationRank(k_, subset);
  return (rank << (b_ - d_ * seg)) | residual;
}

std::vector<core::ReducerId> SplittingDistanceDSchema::ReducersOfInput(
    core::InputId input) const {
  std::vector<core::ReducerId> out;
  out.reserve(replication());
  common::ForEachSubsetOfSize(k_, d_, [&](const std::vector<int>& subset) {
    out.push_back(ReducerFor(input, subset));
  });
  return out;
}

}  // namespace mrcost::hamming
