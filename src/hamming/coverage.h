#ifndef MRCOST_HAMMING_COVERAGE_H_
#define MRCOST_HAMMING_COVERAGE_H_

#include <cstdint>

namespace mrcost::hamming {

/// Empirical exploration of g(q) for Hamming distance d — the Section 3.6
/// open problem ("Discovering the tradeoff for Hamming distances greater
/// than 1 seems hard"). g(q) is the maximum number of distance-d pairs any
/// q-subset of {0,1}^b can contain; for d = 1 Lemma 3.1 proves it equals
/// (q/2) log2 q at powers of two (sub-hypercubes), while for d = 2 only
/// the Omega(q^2) behaviour of Ball-2 is known.

/// Exact maximum by branch-and-bound over subsets (WLOG containing the
/// all-zero string, by translation symmetry of the Hamming cube).
/// Feasible for roughly 2^b <= 64 and q <= 10; cost grows combinatorially.
std::uint64_t ExactMaxCoverage(int b, int d, int q);

/// Greedy max-coverage heuristic: start from the all-zero string, then
/// repeatedly add the string creating the most new distance-d pairs. A
/// lower bound on the true g(q), cheap at any b <= 20.
std::uint64_t GreedyCoverage(int b, int d, int q);

}  // namespace mrcost::hamming

#endif  // MRCOST_HAMMING_COVERAGE_H_
