#ifndef MRCOST_HAMMING_PROBLEM_H_
#define MRCOST_HAMMING_PROBLEM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/problem.h"
#include "src/hamming/bitstring.h"

namespace mrcost::hamming {

/// The Hamming-distance-d problem of Example 2.3 (d = 1) and Section 3.6
/// (d >= 2): inputs are all 2^b strings of length b; outputs are the
/// unordered pairs of strings at Hamming distance exactly d. Input ids are
/// the strings themselves; outputs are enumerated in the constructor.
///
/// Intended for exhaustive validation at small b (the output list has
/// C(b,d) * 2^{b-1} entries).
class HammingProblem final : public core::Problem {
 public:
  /// Preconditions: 1 <= b <= 16, 1 <= d <= b.
  HammingProblem(int b, int d);

  std::string name() const override;
  std::uint64_t num_inputs() const override {
    return std::uint64_t{1} << b_;
  }
  std::uint64_t num_outputs() const override { return pairs_.size(); }
  std::vector<core::InputId> InputsOfOutput(
      core::OutputId output) const override {
    const auto& [u, v] = pairs_[output];
    return {u, v};
  }

  int b() const { return b_; }
  int d() const { return d_; }
  /// The enumerated output pairs (u < v, distance exactly d).
  const std::vector<std::pair<BitString, BitString>>& pairs() const {
    return pairs_;
  }

 private:
  int b_;
  int d_;
  std::vector<std::pair<BitString, BitString>> pairs_;
};

}  // namespace mrcost::hamming

#endif  // MRCOST_HAMMING_PROBLEM_H_
