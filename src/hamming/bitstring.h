#ifndef MRCOST_HAMMING_BITSTRING_H_
#define MRCOST_HAMMING_BITSTRING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/bit_util.h"

namespace mrcost::hamming {

/// A bit string of length b <= 32, stored in the low b bits. (32 bits keeps
/// the full 2^b input domain enumerable, which the model requires; real
/// instances are subsets of the domain.)
using BitString = std::uint64_t;

/// Hamming distance between two strings of equal length.
inline int HammingDistance(BitString u, BitString v) {
  return common::PopCount(u ^ v);
}

/// All b strings at Hamming distance exactly 1 from `w`.
std::vector<BitString> NeighborsAtDistance1(BitString w, int b);

/// The full input domain: all 2^b strings of length b. Precondition b <= 24
/// (guards accidental huge allocations).
std::vector<BitString> AllStrings(int b);

/// `n` distinct b-bit strings clustered around Zipf-popular hubs: hub
/// centers are random strings, each output picks a hub with Zipf(`exponent`)
/// frequency and flips a few random bits of it. At large exponents most
/// strings huddle within small Hamming distance of hub 0, so
/// similarity-join reducers sharing its segments blow up — the
/// skew-injection input for the hamming family. Exponent 0 degrades to
/// near-uniform sampling. Requires 1 <= n <= 2^b and num_hubs >= 1.
std::vector<BitString> SkewedStrings(int b, std::size_t n,
                                     std::size_t num_hubs, double exponent,
                                     std::uint64_t seed);

/// Weight (number of 1s) of the `len`-bit segment of `w` starting at `pos`.
inline int SegmentWeight(BitString w, int pos, int len) {
  return common::PopCount(common::ExtractBits(w, pos, len));
}

}  // namespace mrcost::hamming

#endif  // MRCOST_HAMMING_BITSTRING_H_
