#include "src/matmul/problem.h"

#include <cmath>
#include <sstream>

namespace mrcost::matmul {

MatMulProblem::MatMulProblem(int n) : n_(n) { MRCOST_CHECK(n >= 1); }

std::string MatMulProblem::name() const {
  std::ostringstream os;
  os << "matmul (n=" << n_ << ")";
  return os.str();
}

std::vector<core::InputId> MatMulProblem::InputsOfOutput(
    core::OutputId output) const {
  const std::uint64_t n = static_cast<std::uint64_t>(n_);
  const std::uint64_t i = output / n;
  const std::uint64_t k = output % n;
  std::vector<core::InputId> deps;
  deps.reserve(2 * n_);
  for (std::uint64_t j = 0; j < n; ++j) {
    deps.push_back(i * n + j);          // r_ij
    deps.push_back(n * n + j * n + k);  // s_jk
  }
  return deps;
}

common::Result<OnePhaseSchema> OnePhaseSchema::Make(int n, int s) {
  if (n < 1 || s < 1 || n % s != 0) {
    std::ostringstream os;
    os << "OnePhaseSchema: s=" << s << " must divide n=" << n;
    return common::Status::InvalidArgument(os.str());
  }
  return OnePhaseSchema(n, s);
}

std::string OnePhaseSchema::name() const {
  std::ostringstream os;
  os << "matmul-1phase(s=" << s_ << ")";
  return os.str();
}

std::uint64_t OnePhaseSchema::num_reducers() const {
  const std::uint64_t groups = n_ / s_;
  return groups * groups;
}

std::vector<core::ReducerId> OnePhaseSchema::ReducersOfInput(
    core::InputId input) const {
  const std::uint64_t n = static_cast<std::uint64_t>(n_);
  const std::uint64_t groups = n / s_;
  std::vector<core::ReducerId> out;
  out.reserve(groups);
  if (input < n * n) {
    const std::uint64_t i = input / n;  // r_ij: fixed row group, all column
    const std::uint64_t gi = i / s_;    // groups
    for (std::uint64_t gk = 0; gk < groups; ++gk) {
      out.push_back(gi * groups + gk);
    }
  } else {
    const std::uint64_t k = (input - n * n) % n;  // s_jk: fixed column group
    const std::uint64_t gk = k / s_;
    for (std::uint64_t gi = 0; gi < groups; ++gi) {
      out.push_back(gi * groups + gk);
    }
  }
  return out;
}

MatMulPhase1Problem::MatMulPhase1Problem(int n) : n_(n) {
  MRCOST_CHECK(n >= 1);
}

std::string MatMulPhase1Problem::name() const {
  std::ostringstream os;
  os << "matmul-phase1 (n=" << n_ << ")";
  return os.str();
}

std::vector<core::InputId> MatMulPhase1Problem::InputsOfOutput(
    core::OutputId output) const {
  const std::uint64_t n = static_cast<std::uint64_t>(n_);
  const std::uint64_t k = output % n;
  const std::uint64_t ij = output / n;
  const std::uint64_t j = ij % n;
  const std::uint64_t i = ij / n;
  // x_ijk = r_ij * s_jk.
  return {i * n + j, n * n + j * n + k};
}

common::Result<TwoPhaseCubeSchema> TwoPhaseCubeSchema::Make(int n, int s,
                                                            int t) {
  if (n < 1 || s < 1 || t < 1 || n % s != 0 || n % t != 0) {
    return common::Status::InvalidArgument(
        "TwoPhaseCubeSchema: s and t must divide n");
  }
  return TwoPhaseCubeSchema(n, s, t);
}

std::string TwoPhaseCubeSchema::name() const {
  std::ostringstream os;
  os << "matmul-2phase-cube(s=" << s_ << ",t=" << t_ << ")";
  return os.str();
}

std::uint64_t TwoPhaseCubeSchema::num_reducers() const {
  const std::uint64_t i_groups = n_ / s_;
  const std::uint64_t j_groups = n_ / t_;
  return i_groups * i_groups * j_groups;
}

std::vector<core::ReducerId> TwoPhaseCubeSchema::ReducersOfInput(
    core::InputId input) const {
  const std::uint64_t n = static_cast<std::uint64_t>(n_);
  const std::uint64_t i_groups = n / s_;
  const std::uint64_t j_groups = n / t_;
  auto cell = [&](std::uint64_t gi, std::uint64_t gk, std::uint64_t gj) {
    return (gi * i_groups + gk) * j_groups + gj;
  };
  std::vector<core::ReducerId> out;
  out.reserve(i_groups);
  if (input < n * n) {
    const std::uint64_t gi = (input / n) / s_;
    const std::uint64_t gj = (input % n) / t_;
    for (std::uint64_t gk = 0; gk < i_groups; ++gk) {
      out.push_back(cell(gi, gk, gj));
    }
  } else {
    const std::uint64_t local = input - n * n;
    const std::uint64_t gj = (local / n) / t_;
    const std::uint64_t gk = (local % n) / s_;
    for (std::uint64_t gi = 0; gi < i_groups; ++gi) {
      out.push_back(cell(gi, gk, gj));
    }
  }
  return out;
}

core::Recipe MatMulRecipe(int n) {
  core::Recipe recipe;
  recipe.problem_name = "matmul";
  const double nn = static_cast<double>(n) * n;
  recipe.g = [nn](double q) { return q * q / (4.0 * nn); };
  recipe.num_inputs = 2.0 * nn;
  recipe.num_outputs = nn;
  return recipe;
}

double MatMulLowerBound(int n, double q) {
  return 2.0 * static_cast<double>(n) * n / q;
}

double OnePhaseCommunication(int n, double q) {
  const double nd = static_cast<double>(n);
  return 4.0 * nd * nd * nd * nd / q;
}

double TwoPhaseCommunication(int n, double q) {
  const double nd = static_cast<double>(n);
  return 4.0 * nd * nd * nd / std::sqrt(q);
}

}  // namespace mrcost::matmul
