#ifndef MRCOST_MATMUL_MR_MULTIPLY_H_
#define MRCOST_MATMUL_MR_MULTIPLY_H_

#include <cstdint>
#include <utility>

#include "src/common/status.h"
#include "src/engine/metrics.h"
#include "src/engine/plan.h"
#include "src/matmul/matrix.h"

namespace mrcost::matmul {

/// One matrix element in flight, tagged with which matrix it came from.
struct Element {
  std::uint8_t matrix;  // 0 = R, 1 = S
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

/// One product cell (or round-1 partial sum) in flight.
struct Cell {
  std::uint32_t i;
  std::uint32_t k;
  double value;
};

/// The one-phase algorithm as a lazy plan: the dataset of product cells
/// plus the plan handle. The stage declares Section 6.2's exact geometry
/// (r = n/s, q = 2sn), so Estimate prices it without sampling.
struct OnePhasePlan {
  engine::Plan plan;
  engine::Dataset<Cell> cells;
};
common::Result<OnePhasePlan> BuildMultiplyOnePhasePlan(const Matrix& r,
                                                       const Matrix& s,
                                                       int tile);

/// The two-phase algorithm as a lazy two-round plan: round-1 partial sums
/// regrouped and added in round 2 (Section 6.3), with both rounds'
/// analytic estimates declared.
struct TwoPhasePlan {
  engine::Plan plan;
  engine::Dataset<std::pair<std::uint64_t, double>> sums;  // key = i*n + k
};
common::Result<TwoPhasePlan> BuildMultiplyTwoPhasePlan(const Matrix& r,
                                                       const Matrix& s,
                                                       int s_rows, int t_js);

struct OnePhaseResult {
  Matrix product;
  engine::JobMetrics metrics;
};

/// Section 6.2's one-phase algorithm: reducers are (row-group, col-group)
/// tiles of side s; r_ij goes to every tile in row-group i/s, s_jk to every
/// tile in col-group k/s. q = 2sn, r = n/s, communication = 4n^4/q.
/// Requires square n x n inputs and s | n.
common::Result<OnePhaseResult> MultiplyOnePhase(
    const Matrix& r, const Matrix& s, int tile,
    const engine::JobOptions& options = {});

struct TwoPhaseResult {
  Matrix product;
  engine::PipelineMetrics metrics;  // round 1 then round 2
};

/// Section 6.3's two-phase algorithm. Round 1: reducers are (I-group of
/// size s, K-group of size s, J-group of size t) cubes (Fig. 5); each
/// computes partial sums x_ik over its j-range. Round 2: partial sums are
/// regrouped by (i,k) and added (Fig. 4). Round-1 reducer input is
/// q = 2st; total communication is 2n^3/s + n^3/t, minimized at s = 2t
/// (s = sqrt(q), t = sqrt(q)/2) where it equals 4n^3/sqrt(q).
/// Requires s | n and t | n.
common::Result<TwoPhaseResult> MultiplyTwoPhase(
    const Matrix& r, const Matrix& s, int s_rows, int t_js,
    const engine::JobOptions& options = {});

/// The Lagrangean-optimal round-1 tile shape of Section 6.3 for a given q:
/// s = sqrt(q) and t = sqrt(q)/2 (aspect ratio 2:1), snapped down to
/// divisors of n. Returns {s, t}.
std::pair<int, int> OptimalTwoPhaseTiles(int n, double q);

}  // namespace mrcost::matmul

#endif  // MRCOST_MATMUL_MR_MULTIPLY_H_
