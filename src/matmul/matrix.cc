#include "src/matmul/matrix.h"

#include <algorithm>
#include <cmath>

namespace mrcost::matmul {

void Matrix::FillRandom(common::SplitMix64& rng) {
  for (double& v : data_) v = 2.0 * rng.UniformDouble() - 1.0;
}

void Matrix::FillZipf(common::SplitMix64& rng, double exponent) {
  // Rank-r magnitude 1/(r+1)^exponent over 1024 ranks, uniform sign.
  constexpr std::uint64_t kRanks = 1024;
  const common::ZipfDistribution zipf(kRanks, 1.0);
  for (double& v : data_) {
    const double rank = static_cast<double>(zipf.Sample(rng));
    const double magnitude = 1.0 / std::pow(rank + 1.0, exponent);
    v = rng.Bernoulli(0.5) ? magnitude : -magnitude;
  }
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  MRCOST_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

Matrix SerialMultiply(const Matrix& a, const Matrix& b) {
  MRCOST_CHECK(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a.At(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        c.At(i, j) += aik * b.At(k, j);
      }
    }
  }
  return c;
}

}  // namespace mrcost::matmul
