#ifndef MRCOST_MATMUL_MATRIX_H_
#define MRCOST_MATMUL_MATRIX_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace mrcost::matmul {

/// A dense row-major matrix of doubles. The paper's Section 6 works with
/// square n x n matrices; rectangular support costs nothing extra.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, 0.0) {
    MRCOST_CHECK(rows >= 0 && cols >= 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& At(int i, int j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  double At(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  /// Fills with uniform values in [-1, 1) from `rng`.
  void FillRandom(common::SplitMix64& rng);

  /// Fills with Zipf(`exponent`)-skewed magnitudes (random sign): a few
  /// entries near +/-1 dominate while the tail collapses toward 0 — the
  /// heavy-tailed value profile of real sparse data. Note this skews only
  /// the numerical content: the matmul tiling schemas replicate elements
  /// structurally and a double's wire size is fixed, so engine metrics
  /// and simulated placement are value-independent. Cluster-level skew
  /// for the matmul family comes from SimulationOptions' heterogeneous
  /// worker speeds and stragglers.
  void FillZipf(common::SplitMix64& rng, double exponent);

  /// Max absolute elementwise difference; matrices must be congruent.
  double MaxAbsDiff(const Matrix& other) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Serial baseline: C = A * B (ikj loop order).
Matrix SerialMultiply(const Matrix& a, const Matrix& b);

}  // namespace mrcost::matmul

#endif  // MRCOST_MATMUL_MATRIX_H_
