#include "src/matmul/mr_multiply.h"

#include <cmath>
#include <tuple>
#include <utility>
#include <vector>

namespace mrcost::matmul {
namespace {

/// Flattens both matrices into tagged elements (the job's input list).
std::vector<Element> FlattenInputs(const Matrix& r, const Matrix& s) {
  std::vector<Element> inputs;
  inputs.reserve(static_cast<std::size_t>(r.rows()) * r.cols() +
                 static_cast<std::size_t>(s.rows()) * s.cols());
  for (int i = 0; i < r.rows(); ++i) {
    for (int j = 0; j < r.cols(); ++j) {
      inputs.push_back(Element{0, static_cast<std::uint32_t>(i),
                               static_cast<std::uint32_t>(j), r.At(i, j)});
    }
  }
  for (int j = 0; j < s.rows(); ++j) {
    for (int k = 0; k < s.cols(); ++k) {
      inputs.push_back(Element{1, static_cast<std::uint32_t>(j),
                               static_cast<std::uint32_t>(k), s.At(j, k)});
    }
  }
  return inputs;
}

}  // namespace

common::Result<OnePhasePlan> BuildMultiplyOnePhasePlan(const Matrix& r,
                                                       const Matrix& s,
                                                       int tile) {
  const int n = r.rows();
  if (r.cols() != n || s.rows() != n || s.cols() != n) {
    return common::Status::InvalidArgument(
        "MultiplyOnePhase: matrices must be square and congruent");
  }
  if (tile < 1 || n % tile != 0) {
    return common::Status::InvalidArgument(
        "MultiplyOnePhase: tile must divide n");
  }
  const std::uint32_t groups = static_cast<std::uint32_t>(n / tile);

  // Key = row-group * groups + col-group. Every element is replicated to
  // `groups` reducers, so the fan-out is batched through a reused
  // thread-local buffer.
  auto map_fn = [groups, tile](const Element& e,
                               engine::Emitter<std::uint32_t, Element>&
                                   emitter) {
    static thread_local engine::Emitter<std::uint32_t, Element>::Batch batch;
    if (e.matrix == 0) {
      const std::uint32_t gi = e.row / tile;
      for (std::uint32_t gk = 0; gk < groups; ++gk) {
        batch.emplace_back(gi * groups + gk, e);
      }
    } else {
      const std::uint32_t gk = e.col / tile;
      for (std::uint32_t gi = 0; gi < groups; ++gi) {
        batch.emplace_back(gi * groups + gk, e);
      }
    }
    emitter.EmitBatch(batch);
  };

  auto reduce_fn = [n, tile, groups](const std::uint32_t& key,
                                     const std::vector<Element>& elems,
                                     std::vector<Cell>& out) {
    const int gi = static_cast<int>(key / groups);
    const int gk = static_cast<int>(key % groups);
    // Local dense blocks: s rows of R, s columns of S.
    Matrix rows(tile, n);
    Matrix cols(n, tile);
    for (const Element& e : elems) {
      if (e.matrix == 0) {
        rows.At(static_cast<int>(e.row) - gi * tile,
                static_cast<int>(e.col)) = e.value;
      } else {
        cols.At(static_cast<int>(e.row),
                static_cast<int>(e.col) - gk * tile) = e.value;
      }
    }
    const Matrix block = SerialMultiply(rows, cols);
    out.reserve(static_cast<std::size_t>(tile) * tile);
    for (int bi = 0; bi < tile; ++bi) {
      for (int bk = 0; bk < tile; ++bk) {
        out.push_back(Cell{static_cast<std::uint32_t>(gi * tile + bi),
                           static_cast<std::uint32_t>(gk * tile + bk),
                           block.At(bi, bk)});
      }
    }
  };

  // Section 6.2's exact geometry: r = n/s replication onto (n/s)^2 tile
  // reducers of q = 2sn inputs each, s*s product cells out of each.
  engine::StageEstimate estimate;
  estimate.replication = static_cast<double>(groups);
  estimate.num_reducers = static_cast<double>(groups) * groups;
  estimate.outputs_per_reducer = static_cast<double>(tile) * tile;

  engine::Plan plan;
  auto cells = plan.Source(FlattenInputs(r, s), "matrix elements")
                   .Map<std::uint32_t, Element>(map_fn, "one-phase tiles")
                   .WithEstimate(estimate)
                   .ReduceByKey<Cell>(reduce_fn);
  return OnePhasePlan{std::move(plan), std::move(cells)};
}

common::Result<OnePhaseResult> MultiplyOnePhase(
    const Matrix& r, const Matrix& s, int tile,
    const engine::JobOptions& options) {
  auto plan = BuildMultiplyOnePhasePlan(r, s, tile);
  if (!plan.ok()) return plan.status();
  auto run = plan->cells.Execute(engine::ExecutionOptions(options));

  const int n = r.rows();
  OnePhaseResult result{Matrix(n, n), std::move(run.metrics.rounds[0])};
  for (const Cell& c : run.outputs) {
    result.product.At(static_cast<int>(c.i), static_cast<int>(c.k)) = c.value;
  }
  return result;
}

common::Result<TwoPhasePlan> BuildMultiplyTwoPhasePlan(const Matrix& r,
                                                       const Matrix& s,
                                                       int s_rows, int t_js) {
  const int n = r.rows();
  if (r.cols() != n || s.rows() != n || s.cols() != n) {
    return common::Status::InvalidArgument(
        "MultiplyTwoPhase: matrices must be square and congruent");
  }
  if (s_rows < 1 || n % s_rows != 0 || t_js < 1 || n % t_js != 0) {
    return common::Status::InvalidArgument(
        "MultiplyTwoPhase: s and t must divide n");
  }
  const std::uint32_t i_groups = static_cast<std::uint32_t>(n / s_rows);
  const std::uint32_t j_groups = static_cast<std::uint32_t>(n / t_js);

  // ---- Round 1: key = (I-group, K-group, J-group) flattened.
  auto cube_key = [i_groups, j_groups](std::uint32_t gi, std::uint32_t gk,
                                       std::uint32_t gj) {
    return (static_cast<std::uint64_t>(gi) * i_groups + gk) * j_groups + gj;
  };

  auto map1 = [cube_key, i_groups, s_rows, t_js](
                  const Element& e,
                  engine::Emitter<std::uint64_t, Element>& emitter) {
    if (e.matrix == 0) {
      // r_ij: fixed I-group and J-group; all K-groups (Fig. 5).
      const std::uint32_t gi = e.row / s_rows;
      const std::uint32_t gj = e.col / t_js;
      for (std::uint32_t gk = 0; gk < i_groups; ++gk) {
        emitter.Emit(cube_key(gi, gk, gj), e);
      }
    } else {
      // s_jk: fixed J-group and K-group; all I-groups.
      const std::uint32_t gj = e.row / t_js;
      const std::uint32_t gk = e.col / s_rows;
      for (std::uint32_t gi = 0; gi < i_groups; ++gi) {
        emitter.Emit(cube_key(gi, gk, gj), e);
      }
    }
  };

  auto reduce1 = [i_groups, j_groups, s_rows, t_js](
                     const std::uint64_t& key,
                     const std::vector<Element>& elems,
                     std::vector<Cell>& out) {
    const std::uint32_t gj = static_cast<std::uint32_t>(key % j_groups);
    const std::uint64_t ik = key / j_groups;
    const std::uint32_t gk = static_cast<std::uint32_t>(ik % i_groups);
    const std::uint32_t gi = static_cast<std::uint32_t>(ik / i_groups);
    // Local blocks: s x t slab of R, t x s slab of S.
    Matrix rblock(s_rows, t_js);
    Matrix sblock(t_js, s_rows);
    for (const Element& e : elems) {
      if (e.matrix == 0) {
        rblock.At(static_cast<int>(e.row) - gi * s_rows,
                  static_cast<int>(e.col) - gj * t_js) = e.value;
      } else {
        sblock.At(static_cast<int>(e.row) - gj * t_js,
                  static_cast<int>(e.col) - gk * s_rows) = e.value;
      }
    }
    const Matrix partial = SerialMultiply(rblock, sblock);
    for (int bi = 0; bi < s_rows; ++bi) {
      for (int bk = 0; bk < s_rows; ++bk) {
        out.push_back(Cell{static_cast<std::uint32_t>(gi * s_rows + bi),
                           static_cast<std::uint32_t>(gk * s_rows + bk),
                           partial.At(bi, bk)});
      }
    }
  };

  // Round 1 of Section 6.3: every element fans to n/s cubes, of
  // (n/s)^2 * (n/t) total, q = 2st each, s*s partial sums out.
  engine::StageEstimate estimate1;
  estimate1.replication = static_cast<double>(i_groups);
  estimate1.num_reducers =
      static_cast<double>(i_groups) * i_groups * j_groups;
  estimate1.outputs_per_reducer = static_cast<double>(s_rows) * s_rows;

  // ---- Round 2: group partial sums by (i, k) and add (embarrassingly
  // parallel; Sec. 6.3).
  using Keyed = std::pair<std::uint64_t, double>;
  auto map2 = [n](const Cell& c,
                  engine::Emitter<std::uint64_t, double>& emitter) {
    emitter.Emit(static_cast<std::uint64_t>(c.i) * n + c.k, c.value);
  };
  auto reduce2 = [](const std::uint64_t& key,
                    const std::vector<double>& partials,
                    std::vector<Keyed>& out) {
    double total = 0.0;
    for (double p : partials) total += p;
    out.emplace_back(key, total);
  };

  // Round 2: one pair per partial sum onto n^2 cell reducers, q = n/t.
  engine::StageEstimate estimate2;
  estimate2.replication = 1.0;
  estimate2.num_reducers = static_cast<double>(n) * n;
  estimate2.outputs_per_reducer = 1.0;

  engine::Plan plan;
  auto partials =
      plan.Source(FlattenInputs(r, s), "matrix elements")
          .Map<std::uint64_t, Element>(map1, "two-phase cubes")
          .WithEstimate(estimate1)
          .ReduceByKey<Cell>(reduce1);
  // Round 2 depends on each partial sum individually, so Execute streams
  // round 1's per-shard reduce outputs into round 2's map with no global
  // barrier between the rounds.
  auto sums = partials.Map<std::uint64_t, double>(map2, "partial-sum add")
                  .WithEstimate(estimate2)
                  .WithPerKeyInput()
                  .ReduceByKey<Keyed>(reduce2);
  return TwoPhasePlan{std::move(plan), std::move(sums)};
}

common::Result<TwoPhaseResult> MultiplyTwoPhase(
    const Matrix& r, const Matrix& s, int s_rows, int t_js,
    const engine::JobOptions& options) {
  auto plan = BuildMultiplyTwoPhasePlan(r, s, s_rows, t_js);
  if (!plan.ok()) return plan.status();
  auto run = plan->sums.Execute(engine::ExecutionOptions(options));

  const int n = r.rows();
  TwoPhaseResult result{Matrix(n, n), std::move(run.metrics)};
  for (const auto& [key, value] : run.outputs) {
    result.product.At(static_cast<int>(key / n), static_cast<int>(key % n)) =
        value;
  }
  return result;
}

std::pair<int, int> OptimalTwoPhaseTiles(int n, double q) {
  // Ideal: s = sqrt(q), t = sqrt(q)/2. Snap each down to a divisor of n.
  auto snap_divisor = [n](double target) {
    int best = 1;
    for (int d = 1; d <= n; ++d) {
      if (n % d == 0 && d <= target) best = d;
    }
    return best;
  };
  const int s = snap_divisor(std::sqrt(q));
  const int t = snap_divisor(std::sqrt(q) / 2.0);
  return {s, std::max(1, t)};
}

}  // namespace mrcost::matmul
