#ifndef MRCOST_MATMUL_PROBLEM_H_
#define MRCOST_MATMUL_PROBLEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/lower_bound.h"
#include "src/core/mapping_schema.h"
#include "src/core/problem.h"

namespace mrcost::matmul {

/// The n x n matrix-multiplication problem of Section 6: inputs are the
/// 2n^2 matrix elements (ids 0..n^2-1 = R row-major, n^2..2n^2-1 = S
/// row-major); outputs are the n^2 elements t_ik, each depending on row i
/// of R and column k of S (2n inputs, Fig. 3).
class MatMulProblem final : public core::Problem {
 public:
  explicit MatMulProblem(int n);

  std::string name() const override;
  std::uint64_t num_inputs() const override {
    return 2 * static_cast<std::uint64_t>(n_) * n_;
  }
  std::uint64_t num_outputs() const override {
    return static_cast<std::uint64_t>(n_) * n_;
  }
  std::vector<core::InputId> InputsOfOutput(
      core::OutputId output) const override;

  int n() const { return n_; }

 private:
  int n_;
};

/// The one-phase tiling schema of Section 6.2: rows of R and columns of S
/// are cut into n/s groups of s; one reducer per (row group, column group)
/// covers the s x s output tile. q = 2sn, r = n/s = 2n^2/q — exactly the
/// Section 6.1 lower bound.
class OnePhaseSchema final : public core::MappingSchema {
 public:
  /// Requires s | n.
  static common::Result<OnePhaseSchema> Make(int n, int s);

  std::string name() const override;
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

  std::uint64_t reducer_size() const {
    return 2 * static_cast<std::uint64_t>(s_) * n_;
  }

 private:
  OnePhaseSchema(int n, int s) : n_(n), s_(s) {}
  int n_;
  int s_;
};

/// The round-1 problem of the two-phase algorithm (Section 6.3): outputs
/// are the n^3 products x_ijk = r_ij * s_jk, each depending on exactly two
/// inputs. The paper's rectangle argument ("if a reducer covers x_ijk and
/// x_yjz it also covers x_ijz and x_yjk") constrains this problem's
/// schemas; the cube schema below realizes the optimal shape.
class MatMulPhase1Problem final : public core::Problem {
 public:
  explicit MatMulPhase1Problem(int n);

  std::string name() const override;
  std::uint64_t num_inputs() const override {
    return 2 * static_cast<std::uint64_t>(n_) * n_;
  }
  std::uint64_t num_outputs() const override {
    return static_cast<std::uint64_t>(n_) * n_ * n_;
  }
  std::vector<core::InputId> InputsOfOutput(
      core::OutputId output) const override;

 private:
  int n_;
};

/// The Figure 5 cube schema for round 1: reducers are (I-group of size s,
/// K-group of size s, J-group of size t) cells; r_ij reaches every
/// K-group in its (I, J) slab and s_jk every I-group. q = 2st exactly,
/// r = n/s. The engine implementation is MultiplyTwoPhase; this schema
/// object lets the validator prove the assignment covers every x_ijk.
class TwoPhaseCubeSchema final : public core::MappingSchema {
 public:
  /// Requires s | n and t | n.
  static common::Result<TwoPhaseCubeSchema> Make(int n, int s, int t);

  std::string name() const override;
  std::uint64_t num_reducers() const override;
  std::vector<core::ReducerId> ReducersOfInput(
      core::InputId input) const override;

  std::uint64_t reducer_size() const {
    return 2 * static_cast<std::uint64_t>(s_) * t_;
  }

 private:
  TwoPhaseCubeSchema(int n, int s, int t) : n_(n), s_(s), t_(t) {}
  int n_;
  int s_;
  int t_;
};

/// Section 6.1's recipe: g(q) = q^2/(4n^2), |I| = 2n^2, |O| = n^2; closed
/// form r >= 2n^2/q.
core::Recipe MatMulRecipe(int n);
double MatMulLowerBound(int n, double q);

/// Total communication formulas of Section 6.3: one-phase moves
/// r * |I| = (2n^2/q) * 2n^2 = 4n^4/q pairs; the optimal two-phase
/// algorithm (s = sqrt(q), t = sqrt(q)/2) moves 2n^3/s + n^3/t = 4n^3/sqrt(q).
/// They cross at q = n^2: two-phase is strictly cheaper for all q < n^2.
double OnePhaseCommunication(int n, double q);
double TwoPhaseCommunication(int n, double q);

}  // namespace mrcost::matmul

#endif  // MRCOST_MATMUL_PROBLEM_H_
