#include "src/common/combinatorics.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

namespace mrcost::common {
namespace {

constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

// Multiplies a*b, saturating at UINT64_MAX.
std::uint64_t SatMul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

}  // namespace

std::uint64_t BinomialExact(int n, int k) {
  if (k < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i. The running product of i consecutive
    // integers is divisible by i!, so cancelling gcd factors of the
    // denominator against both the new numerator and the accumulated result
    // always leaves denominator 1.
    std::uint64_t numer = static_cast<std::uint64_t>(n - k + i);
    std::uint64_t denom = static_cast<std::uint64_t>(i);
    const std::uint64_t g1 = std::gcd(numer, denom);
    numer /= g1;
    denom /= g1;
    const std::uint64_t g2 = std::gcd(result, denom);
    result /= g2;
    denom /= g2;
    // denom divides result*numer and is coprime to both factors, so it is 1.
    if (result == kSaturated || result > kSaturated / numer) return kSaturated;
    result *= numer;
  }
  return result;
}

double BinomialDouble(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  return std::exp(LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k));
}

std::uint64_t FactorialExact(int n) {
  if (n < 0) return 0;
  if (n > 20) return kSaturated;
  std::uint64_t result = 1;
  for (int i = 2; i <= n; ++i) result = SatMul(result, i);
  return result;
}

double LogFactorial(int n) {
  if (n <= 1) return 0.0;
  if (n < 256) {
    // Exact summation: cheap and maximally accurate for the sizes used in
    // the paper's estimates.
    double sum = 0.0;
    for (int i = 2; i <= n; ++i) sum += std::log(static_cast<double>(i));
    return sum;
  }
  const double x = static_cast<double>(n);
  // Stirling series with the 1/(12n) correction term.
  return x * std::log(x) - x + 0.5 * std::log(2.0 * M_PI * x) +
         1.0 / (12.0 * x);
}

double Log2Binomial(int n, int k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  constexpr double kLn2 = 0.6931471805599453;
  return (LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k)) / kLn2;
}

double CentralBinomial(int n) { return BinomialDouble(n, n / 2); }

std::uint64_t CombinationRank(int n, const std::vector<int>& subset) {
  const int k = static_cast<int>(subset.size());
  std::uint64_t rank = 0;
  int prev = -1;
  for (int i = 0; i < k; ++i) {
    // Count subsets starting with an element in (prev, subset[i]).
    for (int v = prev + 1; v < subset[i]; ++v) {
      rank += BinomialExact(n - v - 1, k - i - 1);
    }
    prev = subset[i];
  }
  return rank;
}

std::vector<int> CombinationUnrank(int n, int k, std::uint64_t rank) {
  std::vector<int> subset;
  subset.reserve(k);
  int v = 0;
  for (int i = 0; i < k; ++i) {
    while (true) {
      const std::uint64_t count = BinomialExact(n - v - 1, k - i - 1);
      if (rank < count) break;
      rank -= count;
      ++v;
    }
    subset.push_back(v);
    ++v;
  }
  return subset;
}

std::vector<std::vector<int>> AllSubsetsOfSize(int n, int k) {
  std::vector<std::vector<int>> out;
  ForEachSubsetOfSize(n, k,
                      [&out](const std::vector<int>& s) { out.push_back(s); });
  return out;
}

std::uint64_t MultisetCount(int n, int s) {
  return BinomialExact(n + s - 1, s);
}

std::uint64_t MultisetRank(int n, const std::vector<int>& multiset) {
  std::vector<int> combo(multiset.size());
  for (std::size_t i = 0; i < multiset.size(); ++i) {
    combo[i] = multiset[i] + static_cast<int>(i);
  }
  return CombinationRank(n + static_cast<int>(multiset.size()) - 1, combo);
}

std::vector<int> MultisetUnrank(int n, int s, std::uint64_t rank) {
  std::vector<int> combo = CombinationUnrank(n + s - 1, s, rank);
  for (int i = 0; i < s; ++i) combo[i] -= i;
  return combo;
}

}  // namespace mrcost::common
