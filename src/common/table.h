#ifndef MRCOST_COMMON_TABLE_H_
#define MRCOST_COMMON_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace mrcost::common {

/// A small column-aligned table writer used by the bench harnesses to print
/// paper-style result tables (Table 1, Table 2, the Figure 1 series, ...).
/// Cells are strings; convenience Add* overloads format numbers with a
/// fixed precision suitable for comparing measured values against the
/// paper's closed forms.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent Add* calls fill it left to right.
  Table& AddRow();
  Table& Add(std::string cell);
  Table& Add(const char* cell);
  Table& Add(std::int64_t v);
  Table& Add(std::uint64_t v);
  Table& Add(int v);
  /// Doubles print with 4 significant digits; exact integers print bare.
  Table& Add(double v);

  /// Renders with a header rule and column alignment.
  std::string ToString() const;
  /// Comma-separated rendering for machine consumption.
  std::string ToCsv() const;

  /// Convenience: prints ToString() to `os` with a title line.
  void Print(std::ostream& os, const std::string& title) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` the way Table::Add(double) does; exposed for tests and for
/// inline annotations in bench output.
std::string FormatDouble(double v);

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_TABLE_H_
