#ifndef MRCOST_COMMON_STATUS_H_
#define MRCOST_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

namespace mrcost::common {

/// Error categories used across the library. Modeled on absl::StatusCode but
/// reduced to the cases this library actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  kUnimplemented,
  kInternal,
  /// A dependency (peer process, remote run source) is gone or not yet
  /// reachable; the operation may succeed if retried against a replacement
  /// — the distributed runtime uses this to route fetch failures into its
  /// re-fetch/re-execute path instead of failing the job.
  kUnavailable,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result. Library code returns Status instead
/// of throwing: map-reduce schema construction has many user-parameterized
/// preconditions (divisibility of segment lengths, reducer-size limits) that
/// callers need to handle programmatically.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error union, analogous to absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, so functions can
  /// `return value;` or `return Status::InvalidArgument(...)`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  /// Precondition: ok(). Aborts otherwise — callers must check first.
  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result accessed with error: "
                << std::get<Status>(rep_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

namespace internal {
void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

/// CHECK-style invariant assertion, active in all build types. Used for
/// programmer errors (not user input); user input errors return Status.
#define MRCOST_CHECK(expr)                                         \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::mrcost::common::internal::CheckFailed(__FILE__, __LINE__,  \
                                              #expr);              \
    }                                                              \
  } while (false)

#define MRCOST_CHECK_OK(status_expr)                                \
  do {                                                              \
    const ::mrcost::common::Status _mrcost_s = (status_expr);       \
    if (!_mrcost_s.ok()) {                                          \
      std::cerr << _mrcost_s.ToString() << "\n";                    \
      ::mrcost::common::internal::CheckFailed(__FILE__, __LINE__,   \
                                              #status_expr);        \
    }                                                               \
  } while (false)

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_STATUS_H_
