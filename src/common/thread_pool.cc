#include "src/common/thread_pool.h"

#include <algorithm>

namespace mrcost::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(num_threads, 1);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, pool.num_threads() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(lo + chunk_size, end);
    if (lo >= hi) break;
    pool.Submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  pool.Wait();
}

}  // namespace mrcost::common
