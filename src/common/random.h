#ifndef MRCOST_COMMON_RANDOM_H_
#define MRCOST_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace mrcost::common {

/// SplitMix64: a tiny, fast, high-quality deterministic PRNG. All randomness
/// in the library flows through this type with explicit seeds, so every test
/// and bench run is reproducible.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); precondition bound > 0. Uses rejection
  /// sampling to avoid modulo bias.
  std::uint64_t UniformBelow(std::uint64_t bound) {
    const std::uint64_t threshold = -bound % bound;
    while (true) {
      const std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive; precondition lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    UniformBelow(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  std::uint64_t state_;
};

/// Fisher-Yates shuffle of `items` using `rng`.
template <typename T>
void Shuffle(std::vector<T>& items, SplitMix64& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::size_t j = rng.UniformBelow(i);
    std::swap(items[i - 1], items[j]);
  }
}

/// Samples `k` distinct values from [0, n) uniformly (Floyd's algorithm when
/// k is small relative to n, shuffle otherwise). Result is unsorted.
std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                    std::uint64_t k,
                                                    SplitMix64& rng);

/// Samples from a Zipf(s) distribution over {0, ..., n-1} by inverse CDF
/// (precomputed); rank 0 is the most frequent. Used to synthesize the
/// skewed key distributions (word frequencies, social-graph degrees) the
/// paper's skew discussion concerns.
class ZipfDistribution {
 public:
  /// Requires n >= 1; `exponent` is the Zipf parameter (1.0 = classic).
  ZipfDistribution(std::uint64_t n, double exponent);

  std::uint64_t Sample(SplitMix64& rng) const;
  std::uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// A stateless 64-bit mix usable as a hash for bucketing (the `h` of the
/// paper's bucket-based algorithms). Distinct from std::hash so bucket
/// assignments are stable across standard libraries.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_RANDOM_H_
