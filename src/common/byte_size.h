#ifndef MRCOST_COMMON_BYTE_SIZE_H_
#define MRCOST_COMMON_BYTE_SIZE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace mrcost::common {

/// Estimated in-memory footprint of a value, in bytes. One convention is
/// used everywhere the engine compares sizes — the shuffle's
/// bytes_shuffled accounting, the cluster simulator's
/// reducer_capacity_bytes checks, and the external shuffle's spill
/// trigger — so a capacity budget derived from one of them always agrees
/// with the others.
///
/// The convention measures what a value costs while buffered in engine
/// memory (the object itself plus the heap payload it owns), not its
/// serialized wire size:
///   * trivially copyable T: sizeof(T), padding included — that is what a
///     buffered element of vector<T> occupies;
///   * std::string: sizeof(std::string) for the object (which contains the
///     small-string buffer) plus the heap payload, counted only when the
///     string is too long for the small buffer. The small-buffer capacity
///     is modeled as the fixed kStringSsoCapacity below rather than probed
///     per platform, so sizes are deterministic across toolchains;
///   * std::vector<T>: sizeof(std::vector<T>) plus the footprint of every
///     element (for trivially copyable T that sum is exactly the heap
///     array);
///   * std::pair / std::tuple: the sum of the members' footprints
///     (padding between members is not modeled — composites are priced
///     the same whether or not the library makes them trivially
///     copyable, keeping sizes deterministic across platforms);
///   * user types: a `ByteSize()` member or a ByteSizeOf overload.
///
/// All overloads are declared before any definition so that overloads for
/// std:: containers are visible from inside the composite overloads
/// (ordinary lookup happens at template definition time; ADL would not
/// find them in namespace mrcost::common).
template <typename T>
std::size_t ByteSizeOf(const T& value);
template <typename A, typename B>
std::size_t ByteSizeOf(const std::pair<A, B>& p);
template <typename... Ts>
std::size_t ByteSizeOf(const std::tuple<Ts...>& t);
inline std::size_t ByteSizeOf(const std::string& s);
inline std::size_t ByteSizeOf(std::string_view sv);
template <typename T>
std::size_t ByteSizeOf(const std::vector<T>& v);

/// Modeled small-string-optimization capacity: strings of at most this
/// many characters are assumed to live inside the std::string object (the
/// common libstdc++/libc++ layout) and contribute no heap payload.
inline constexpr std::size_t kStringSsoCapacity = 15;

namespace internal {

template <typename T, typename = void>
struct HasByteSizeMember : std::false_type {};

template <typename T>
struct HasByteSizeMember<T,
                         std::void_t<decltype(std::declval<const T&>()
                                                  .ByteSize())>>
    : std::true_type {};

}  // namespace internal

template <typename A, typename B>
std::size_t ByteSizeOf(const std::pair<A, B>& p) {
  return ByteSizeOf(p.first) + ByteSizeOf(p.second);
}

template <typename... Ts>
std::size_t ByteSizeOf(const std::tuple<Ts...>& t) {
  return std::apply(
      [](const Ts&... elems) {
        return (std::size_t{0} + ... + ByteSizeOf(elems));
      },
      t);
}

inline std::size_t ByteSizeOf(const std::string& s) {
  return sizeof(std::string) +
         (s.size() > kStringSsoCapacity ? s.size() : 0);
}

/// A view is priced as the view object plus the full viewed payload: the
/// bytes live in someone's arena, and the budget checks that price blocks
/// by (src/storage/block.h) must count them. There is no SSO discount —
/// a view never stores characters inline.
inline std::size_t ByteSizeOf(std::string_view sv) {
  return sizeof(std::string_view) + sv.size();
}

template <typename T>
std::size_t ByteSizeOf(const std::vector<T>& v) {
  std::size_t total = sizeof(std::vector<T>);
  for (const T& x : v) total += ByteSizeOf(x);
  return total;
}

template <typename T>
std::size_t ByteSizeOf(const T& value) {
  if constexpr (internal::HasByteSizeMember<T>::value) {
    return value.ByteSize();
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteSizeOf: provide an overload, a ByteSize() member, or "
                  "a trivially copyable type");
    return sizeof(T);
  }
}

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_BYTE_SIZE_H_
