#ifndef MRCOST_COMMON_TEMP_DIR_H_
#define MRCOST_COMMON_TEMP_DIR_H_

#include <string>

#include "src/common/status.h"

namespace mrcost::common {

/// RAII owner of one unique scratch directory. Create() makes a fresh
/// directory named `<prefix><pid>-<seq>` under `base` (empty = the system
/// temp directory) — the pid + process-wide sequence number make
/// concurrent creations race-free across processes sharing one base, which
/// is exactly the situation of a coordinator and N worker processes
/// sharing a spill directory. The destructor removes the directory and
/// everything inside it unless Keep() disarmed cleanup.
class TempDir {
 public:
  static Result<TempDir> Create(const std::string& base = "",
                                const std::string& prefix = "mrcost-");

  /// An empty handle: path() is "" and the destructor does nothing.
  TempDir() = default;
  ~TempDir();

  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  /// Absolute path of the owned directory; empty for a default-constructed
  /// or moved-from handle.
  const std::string& path() const { return path_; }

  /// Disarms destructor cleanup; the directory outlives this handle.
  void Keep() { keep_ = true; }
  bool kept() const { return keep_; }

  /// Removes the directory tree now (idempotent; the destructor then does
  /// nothing). Errors from the filesystem surface as kInternal.
  Status Remove();

 private:
  explicit TempDir(std::string path) : path_(std::move(path)) {}

  std::string path_;
  bool keep_ = false;
};

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_TEMP_DIR_H_
