#ifndef MRCOST_COMMON_THREAD_POOL_H_
#define MRCOST_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mrcost::common {

/// A fixed-size worker pool. The map-reduce engine runs map tasks and
/// reduce tasks on it to model the cluster's parallel workers; it is also
/// usable directly via ParallelFor.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [begin, end) across `pool`, blocking until done.
/// Work is divided into contiguous chunks, one batch per thread, to keep
/// scheduling overhead negligible for fine-grained bodies.
void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_THREAD_POOL_H_
