#ifndef MRCOST_COMMON_COMBINATORICS_H_
#define MRCOST_COMMON_COMBINATORICS_H_

#include <cstdint>
#include <vector>

namespace mrcost::common {

/// Exact binomial coefficient C(n, k) as uint64; saturates at UINT64_MAX on
/// overflow. C(n, k) = 0 for k > n or k < 0.
std::uint64_t BinomialExact(int n, int k);

/// Binomial coefficient as double (valid far beyond uint64 range).
double BinomialDouble(int n, int k);

/// Exact factorial for n <= 20; saturates at UINT64_MAX above.
std::uint64_t FactorialExact(int n);

/// Stirling's approximation ln(n!) = n ln n - n + 0.5 ln(2 pi n) + ...,
/// exact summation for small n. Used for the paper's max-cell population
/// estimates (Sections 3.4 and 3.5).
double LogFactorial(int n);

/// log2 of C(n, k), computed stably via LogFactorial.
double Log2Binomial(int n, int k);

/// Central binomial estimate from the paper (Section 3.4): the number of
/// b/2-bit strings of weight b/4 is approximately 2^{b/2} / sqrt(pi b / 2)
/// (Stirling). Returns C(n, n/2) as a double for even n.
double CentralBinomial(int n);

/// Enumerates all k-subsets of {0, ..., n-1} in lexicographic order.
std::vector<std::vector<int>> AllSubsetsOfSize(int n, int k);

/// Lexicographic rank of the sorted k-subset `subset` of {0,...,n-1}, in
/// [0, C(n,k)). Inverse of CombinationUnrank.
std::uint64_t CombinationRank(int n, const std::vector<int>& subset);

/// The sorted k-subset of {0,...,n-1} with lexicographic rank `rank`.
std::vector<int> CombinationUnrank(int n, int k, std::uint64_t rank);

/// Number of size-s multisets over {0,...,n-1}: C(n+s-1, s).
std::uint64_t MultisetCount(int n, int s);

/// Lexicographic rank of the sorted multiset `multiset` (ascending, values
/// in {0,...,n-1}), in [0, MultisetCount(n, |multiset|)). Implemented via
/// the standard bijection with combinations (add i to the i-th element).
std::uint64_t MultisetRank(int n, const std::vector<int>& multiset);

/// Inverse of MultisetRank.
std::vector<int> MultisetUnrank(int n, int s, std::uint64_t rank);

/// Calls `fn(subset)` for each k-subset of {0,...,n-1} without materializing
/// the full list. `fn` receives a const std::vector<int>& that is reused
/// across calls.
template <typename Fn>
void ForEachSubsetOfSize(int n, int k, Fn&& fn) {
  if (k < 0 || k > n) return;
  std::vector<int> idx(k);
  for (int i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    fn(static_cast<const std::vector<int>&>(idx));
    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 && idx[i] == n - k + i) --i;
    if (i < 0) break;
    ++idx[i];
    for (int j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_COMBINATORICS_H_
