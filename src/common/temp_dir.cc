#include "src/common/temp_dir.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <system_error>
#include <utility>

namespace mrcost::common {

namespace fs = std::filesystem;

Result<TempDir> TempDir::Create(const std::string& base,
                                const std::string& prefix) {
  static std::atomic<std::uint64_t> next_seq{0};

  std::error_code ec;
  fs::path root;
  if (base.empty()) {
    root = fs::temp_directory_path(ec);
    if (ec) root = ".";
  } else {
    root = base;
    fs::create_directories(root, ec);  // ok if it already exists
    if (ec) {
      return Status::Internal("TempDir: cannot create base directory '" +
                              base + "': " + ec.message());
    }
  }

  // pid + per-process sequence make the name unique across processes and
  // threads; the create_directory false-return covers leftover collisions.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t seq =
        next_seq.fetch_add(1, std::memory_order_relaxed);
    fs::path candidate =
        root / (prefix + std::to_string(::getpid()) + "-" +
                std::to_string(seq));
    ec.clear();
    if (fs::create_directory(candidate, ec) && !ec) {
      return TempDir(candidate.string());
    }
    if (ec && ec != std::errc::file_exists) {
      return Status::Internal("TempDir: cannot create '" +
                              candidate.string() + "': " + ec.message());
    }
  }
  return Status::Internal("TempDir: exhausted name attempts under '" +
                          root.string() + "'");
}

TempDir::~TempDir() {
  if (!keep_) (void)Remove();
}

TempDir::TempDir(TempDir&& other) noexcept
    : path_(std::move(other.path_)), keep_(other.keep_) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (!keep_) (void)Remove();
    path_ = std::move(other.path_);
    keep_ = other.keep_;
    other.path_.clear();
  }
  return *this;
}

Status TempDir::Remove() {
  if (path_.empty()) return Status::Ok();
  std::error_code ec;
  fs::remove_all(path_, ec);
  path_.clear();
  if (ec) {
    return Status::Internal("TempDir: remove_all failed: " + ec.message());
  }
  return Status::Ok();
}

}  // namespace mrcost::common
