#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/bit_util.h"

namespace mrcost::common {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  // Chan/Golub/LeVeque pairwise update: the combined M2 is the two parts'
  // M2 plus the between-parts term delta^2 * na*nb/(na+nb).
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  mean_ += delta * nb / (na + nb);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::min() const { return count_ > 0 ? min_ : 0.0; }
double RunningStats::max() const { return count_ > 0 ? max_ : 0.0; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::skew() const {
  if (count_ == 0 || mean_ == 0.0) return 0.0;
  return max_ / mean_;
}

std::string RunningStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " min=" << min()
     << " max=" << max() << " sd=" << stddev();
  return os.str();
}

void Log2Histogram::Add(std::uint64_t x) {
  ++total_;
  if (x == 0) {
    ++zeros_;
    return;
  }
  const int bucket = FloorLog2(x);
  if (buckets_.size() <= static_cast<std::size_t>(bucket)) {
    buckets_.resize(bucket + 1, 0);
  }
  ++buckets_[bucket];
}

void Log2Histogram::AddBucketCount(std::size_t i, std::int64_t count) {
  if (count == 0) return;
  if (buckets_.size() <= i) buckets_.resize(i + 1, 0);
  buckets_[i] += count;
  total_ += count;
}

void Log2Histogram::AddZeros(std::int64_t count) {
  zeros_ += count;
  total_ += count;
}

void Log2Histogram::Merge(const Log2Histogram& other) {
  total_ += other.total_;
  zeros_ += other.zeros_;
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

std::string Log2Histogram::ToString() const {
  if (total_ == 0) return "";
  std::ostringstream os;
  std::int64_t max_count = zeros_;
  for (std::int64_t c : buckets_) max_count = std::max(max_count, c);
  auto render = [&](const std::string& label, std::int64_t count) {
    if (count == 0) return;
    const int width =
        static_cast<int>(40.0 * static_cast<double>(count) /
                         static_cast<double>(std::max<std::int64_t>(
                             max_count, 1)));
    os << "  " << label << " | " << std::string(std::max(width, 1), '#') << " "
       << count << "\n";
  };
  render("[0]        ", zeros_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    std::ostringstream label;
    label << "[2^" << i << ", 2^" << i + 1 << ")";
    std::string padded = label.str();
    if (padded.size() < 11) padded.resize(11, ' ');
    render(padded, buckets_[i]);
  }
  return os.str();
}

}  // namespace mrcost::common
