#ifndef MRCOST_COMMON_STATS_H_
#define MRCOST_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mrcost::common {

/// Streaming summary statistics over a sequence of observations (Welford's
/// algorithm for the variance). Used for reducer input sizes, per-worker
/// loads, and bench series.
class RunningStats {
 public:
  void Add(double x);

  /// Folds `other` in as if every observation it saw had been Add()ed here
  /// (parallel Welford / Chan et al. combine: exact counts and sums, the
  /// same mean and M2 a serial accumulation computes up to floating-point
  /// association). Per-thread stats shards — the obs registry's, or
  /// per-shard reducer-size stats — combine through this instead of
  /// funneling every observation through one locked accumulator.
  void Merge(const RunningStats& other);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const;
  double max() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;

  /// Ratio max/mean, a standard load-skew measure; 0 when empty.
  double skew() const;

  std::string ToString() const;

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A fixed-bucket histogram over non-negative integer observations,
/// bucketed by powers of two. Bucket i holds values in [2^i, 2^{i+1}).
class Log2Histogram {
 public:
  void Add(std::uint64_t x);
  /// Bucket-wise sum of `other` into this histogram — order-independent
  /// and exact, so per-thread histogram shards combine without locks.
  void Merge(const Log2Histogram& other);
  /// Folds `count` observations directly into bucket `i` (resp. the zero
  /// bucket) — how a histogram serialized in another process (bucket
  /// counts only) is reconstructed exactly on this side of an RPC.
  void AddBucketCount(std::size_t i, std::int64_t count);
  void AddZeros(std::int64_t count);
  /// Multi-line ASCII rendering; empty string when no observations.
  std::string ToString() const;
  std::int64_t total() const { return total_; }
  /// Observations equal to zero (below the first power-of-two bucket).
  std::int64_t zeros() const { return zeros_; }
  /// Number of allocated power-of-two buckets (highest observed log2 + 1).
  std::size_t num_buckets() const { return buckets_.size(); }
  /// Count in bucket i, i.e. observations in [2^i, 2^{i+1}).
  std::int64_t bucket(std::size_t i) const {
    return i < buckets_.size() ? buckets_[i] : 0;
  }

 private:
  std::vector<std::int64_t> buckets_;
  std::int64_t zeros_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_STATS_H_
