#ifndef MRCOST_COMMON_STATS_H_
#define MRCOST_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mrcost::common {

/// Streaming summary statistics over a sequence of observations (Welford's
/// algorithm for the variance). Used for reducer input sizes, per-worker
/// loads, and bench series.
class RunningStats {
 public:
  void Add(double x);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const;
  double max() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;

  /// Ratio max/mean, a standard load-skew measure; 0 when empty.
  double skew() const;

  std::string ToString() const;

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A fixed-bucket histogram over non-negative integer observations,
/// bucketed by powers of two. Bucket i holds values in [2^i, 2^{i+1}).
class Log2Histogram {
 public:
  void Add(std::uint64_t x);
  /// Multi-line ASCII rendering; empty string when no observations.
  std::string ToString() const;
  std::int64_t total() const { return total_; }

 private:
  std::vector<std::int64_t> buckets_;
  std::int64_t zeros_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_STATS_H_
