#include "src/common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace mrcost::common {

ZipfDistribution::ZipfDistribution(std::uint64_t n, double exponent) {
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
}

std::uint64_t ZipfDistribution::Sample(SplitMix64& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                    std::uint64_t k,
                                                    SplitMix64& rng) {
  if (k >= n) {
    std::vector<std::uint64_t> all(n);
    for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  if (k > n / 4) {
    // Dense case: shuffle a full index vector and take a prefix.
    std::vector<std::uint64_t> all(n);
    for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all, rng);
    all.resize(k);
    return all;
  }
  // Sparse case: Floyd's algorithm, O(k) expected.
  std::unordered_set<std::uint64_t> chosen;
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.UniformBelow(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace mrcost::common
