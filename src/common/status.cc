#include "src/common/status.h"

#include <cstdlib>
#include <iostream>

namespace mrcost::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::cerr << "MRCOST_CHECK failed at " << file << ":" << line << ": " << expr
            << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace mrcost::common
