#include "src/common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/status.h"

namespace mrcost::common {

std::string FormatDouble(double v) {
  std::ostringstream os;
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
    return os.str();
  }
  if (v != 0.0 && (std::abs(v) >= 1e7 || std::abs(v) < 1e-4)) {
    os << std::scientific << std::setprecision(3) << v;
  } else {
    os << std::fixed << std::setprecision(4) << v;
  }
  return os.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::AddRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(std::string cell) {
  MRCOST_CHECK(!rows_.empty());
  MRCOST_CHECK(rows_.back().size() < headers_.size());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::Add(const char* cell) { return Add(std::string(cell)); }

Table& Table::Add(std::int64_t v) { return Add(std::to_string(v)); }
Table& Table::Add(std::uint64_t v) { return Add(std::to_string(v)); }
Table& Table::Add(int v) { return Add(std::to_string(v)); }
Table& Table::Add(double v) { return Add(FormatDouble(v)); }

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print(std::ostream& os, const std::string& title) const {
  os << "\n== " << title << " ==\n";
  // MRCOST_CSV=1 switches all bench tables to machine-readable CSV
  // (documented in README) without touching each bench binary.
  const char* csv = std::getenv("MRCOST_CSV");
  if (csv != nullptr && csv[0] == '1') {
    os << ToCsv();
  } else {
    os << ToString();
  }
}

}  // namespace mrcost::common
