#ifndef MRCOST_COMMON_BIT_UTIL_H_
#define MRCOST_COMMON_BIT_UTIL_H_

#include <cstdint>

namespace mrcost::common {

/// Number of set bits (the "weight" of a bit string in the paper's
/// Section 3.4 sense).
inline int PopCount(std::uint64_t x) {
  return __builtin_popcountll(x);
}

/// Index of the lowest set bit; precondition x > 0.
inline int CountTrailingZeros(std::uint64_t x) {
  return __builtin_ctzll(x);
}

/// Floor of log base 2; precondition x > 0.
inline int FloorLog2(std::uint64_t x) {
  return 63 - __builtin_clzll(x);
}

/// True iff x is a power of two (x > 0).
inline bool IsPowerOfTwo(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Mask with the low `n` bits set; n in [0, 64].
inline std::uint64_t LowBitsMask(int n) {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Extracts `len` bits of `x` starting at bit position `pos` (bit 0 =
/// least-significant). Precondition: pos + len <= 64.
inline std::uint64_t ExtractBits(std::uint64_t x, int pos, int len) {
  return (x >> pos) & LowBitsMask(len);
}

/// Replaces the `len`-bit field of `x` at `pos` with `field`.
inline std::uint64_t DepositBits(std::uint64_t x, int pos, int len,
                                 std::uint64_t field) {
  const std::uint64_t mask = LowBitsMask(len) << pos;
  return (x & ~mask) | ((field << pos) & mask);
}

/// Removes the `len`-bit field at `pos` from `x`, shifting higher bits down.
/// This is the Splitting Algorithm's "string with the i-th segment deleted"
/// (Section 3.3 of the paper). Precondition: pos + len <= 64.
inline std::uint64_t RemoveBitField(std::uint64_t x, int pos, int len) {
  const std::uint64_t low = x & LowBitsMask(pos);
  const std::uint64_t high = (pos + len >= 64) ? 0 : (x >> (pos + len));
  return low | (high << pos);
}

}  // namespace mrcost::common

#endif  // MRCOST_COMMON_BIT_UTIL_H_
