#include "src/obs/registry.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "src/obs/export.h"

namespace mrcost::obs {

namespace {

std::string RenderNumber(double value) {
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      value > -1e15 && value < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::atomic<std::uint64_t> next_registry_id{1};

// Shards are looked up thread-locally by a process-unique registry id (not
// the Registry address, which freestanding test instances could reuse).
thread_local std::unordered_map<
    std::uint64_t, std::shared_ptr<void>>* tls_shards = nullptr;

}  // namespace

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

void Registry::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_ == 0) {
    ClearLocked();
    enabled_flag_.store(true, std::memory_order_relaxed);
  }
  ++sessions_;
}

void Registry::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_ > 0 && --sessions_ == 0) {
    enabled_flag_.store(false, std::memory_order_relaxed);
  }
}

Registry::Shard& Registry::LocalShard() {
  static thread_local std::uint64_t cached_id = 0;
  static thread_local Shard* cached_shard = nullptr;
  // One id per Registry instance, assigned lazily on first shard creation.
  // The fast path below is a thread-local compare, no locks.
  std::uint64_t id = instance_id_.load(std::memory_order_acquire);
  if (id == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    id = instance_id_.load(std::memory_order_relaxed);
    if (id == 0) {
      id = next_registry_id.fetch_add(1, std::memory_order_relaxed);
      instance_id_.store(id, std::memory_order_release);
    }
  }
  if (cached_shard != nullptr && cached_id == id) {
    return *cached_shard;
  }
  if (tls_shards == nullptr) {
    tls_shards =
        new std::unordered_map<std::uint64_t, std::shared_ptr<void>>();
  }
  auto it = tls_shards->find(id);
  if (it == tls_shards->end()) {
    auto shard = std::make_shared<Shard>();
    {
      std::lock_guard<std::mutex> lock(mu_);
      shards_.push_back(shard);
    }
    it = tls_shards->emplace(id, shard).first;
  }
  cached_id = id;
  cached_shard = static_cast<Shard*>(it->second.get());
  return *cached_shard;
}

void Registry::AddCounter(std::string_view name, std::uint64_t delta) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.counters[std::string(name)] += delta;
}

void Registry::SetGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[std::string(name)] = value;
}

void Registry::ObserveStats(std::string_view name, double value) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.stats[std::string(name)].Add(value);
}

void Registry::MergeStats(std::string_view name,
                          const common::RunningStats& stats) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.stats[std::string(name)].Merge(stats);
}

void Registry::ObserveHistogram(std::string_view name, std::uint64_t value) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.histograms[std::string(name)].Add(value);
}

void Registry::MergeHistogram(std::string_view name,
                              const common::Log2Histogram& histogram) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.histograms[std::string(name)].Merge(histogram);
}

Registry::Snapshot Registry::TakeSnapshot() const {
  Snapshot snapshot;
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards = shards_;
    snapshot.gauges = gauges_;
  }
  for (const auto& shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, value] : shard->counters) {
      snapshot.counters[name] += value;
    }
    for (const auto& [name, stats] : shard->stats) {
      snapshot.stats[name].Merge(stats);
    }
    for (const auto& [name, histogram] : shard->histograms) {
      snapshot.histograms[name].Merge(histogram);
    }
  }
  return snapshot;
}

void Registry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ClearLocked();
}

void Registry::ClearLocked() {
  gauges_.clear();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->counters.clear();
    shard->stats.clear();
    shard->histograms.clear();
  }
}

std::string Registry::Snapshot::ToJson() const {
  std::ostringstream os;
  os << "{";
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << RenderNumber(value);
  }
  os << "},\"stats\":{";
  first = true;
  for (const auto& [name, stats] : stats) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"count\":" << stats.count()
       << ",\"sum\":" << RenderNumber(stats.sum())
       << ",\"mean\":" << RenderNumber(stats.mean())
       << ",\"min\":" << RenderNumber(stats.min())
       << ",\"max\":" << RenderNumber(stats.max())
       << ",\"stddev\":" << RenderNumber(stats.stddev()) << "}";
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"total\":" << histogram.total()
       << ",\"zeros\":" << histogram.zeros() << ",\"buckets\":[";
    for (std::size_t i = 0; i < histogram.num_buckets(); ++i) {
      if (i > 0) os << ",";
      os << histogram.bucket(i);
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

}  // namespace mrcost::obs
