#ifndef MRCOST_OBS_REGISTRY_H_
#define MRCOST_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"

namespace mrcost::obs {

/// Named counters, gauges, running stats, and log2 histograms. Counters,
/// stats, and histograms accumulate into per-thread shards (one short
/// uncontended lock each) and are combined with `RunningStats::Merge` /
/// `Log2Histogram::Merge` only at snapshot time, so concurrent recording
/// threads never contend; gauges are last-write-wins under one mutex.
///
/// `Global()` is the engine-wide instance; whether engine code publishes to
/// it is gated by the refcounted Enable/Disable pair (a capture scope turns
/// it on). Freestanding instances always record — tests use those.
class Registry {
 public:
  Registry() = default;
  ~Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  /// Refcounted publication gate for the global instance. Engine call
  /// sites check `enabled()` before touching `Global()`; the transition
  /// to the first enable clears previously accumulated values.
  void Enable();
  void Disable();
  bool enabled() const {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  void AddCounter(std::string_view name, std::uint64_t delta = 1);
  void SetGauge(std::string_view name, double value);
  void ObserveStats(std::string_view name, double value);
  void MergeStats(std::string_view name, const common::RunningStats& stats);
  void ObserveHistogram(std::string_view name, std::uint64_t value);
  void MergeHistogram(std::string_view name,
                      const common::Log2Histogram& histogram);

  /// A point-in-time merge of all shards. std::map keys make iteration
  /// order — and therefore ToJson output — deterministic.
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, common::RunningStats> stats;
    std::map<std::string, common::Log2Histogram> histograms;

    /// One JSON document: {"counters":{...},"gauges":{...},
    /// "stats":{name:{count,mean,min,max,stddev}},
    /// "histograms":{name:{zeros,total,buckets:[...]}}}.
    std::string ToJson() const;
  };
  Snapshot TakeSnapshot() const;

  void Clear();

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, common::RunningStats> stats;
    std::unordered_map<std::string, common::Log2Histogram> histograms;
  };

  Shard& LocalShard();
  void ClearLocked();

  std::atomic<bool> enabled_flag_{false};
  std::atomic<std::uint64_t> instance_id_{0};
  mutable std::mutex mu_;
  int sessions_ = 0;
  std::map<std::string, double> gauges_;
  std::vector<std::shared_ptr<Shard>> shards_;
};

/// True when engine code should publish metrics to Registry::Global().
inline bool MetricsEnabled() { return Registry::Global().enabled(); }

}  // namespace mrcost::obs

#endif  // MRCOST_OBS_REGISTRY_H_
