#ifndef MRCOST_OBS_TRACE_H_
#define MRCOST_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mrcost::obs {

/// A single key/value annotation on a trace event. Values are stored
/// pre-rendered; `numeric` marks values that should be emitted unquoted in
/// JSON (integers and doubles rendered with shortest round-trip precision).
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

TraceArg Arg(std::string key, std::string value);
TraceArg Arg(std::string key, const char* value);
TraceArg Arg(std::string key, double value);
TraceArg Arg(std::string key, std::uint64_t value);
TraceArg Arg(std::string key, std::int64_t value);
TraceArg Arg(std::string key, std::uint32_t value);
TraceArg Arg(std::string key, int value);

/// Trace lanes. Real wall-clock events live in pid 0; the cluster
/// simulator's virtual-time events live in pid 1 so both timelines can be
/// loaded side by side in Perfetto without interleaving.
inline constexpr std::uint32_t kRealTimePid = 0;
inline constexpr std::uint32_t kSimulatedPid = 1;

/// One recorded event. phase follows the Chrome trace_event convention:
/// 'X' = complete span [t_start_us, t_end_us], 'i' = instant at t_start_us.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  std::uint32_t pid = kRealTimePid;
  std::uint32_t tid = 0;
  std::uint32_t round = 0;
  std::uint32_t shard = 0;
  /// Process-unique task attempt group: both attempts of a speculated task
  /// share one id. 0 = event is not tied to a stage-graph task.
  std::uint64_t task_id = 0;
  std::uint64_t t_start_us = 0;
  std::uint64_t t_end_us = 0;
  std::vector<TraceArg> args;
};

/// Process-wide event sink. Recording threads append to thread-local ring
/// buffers (one short uncontended lock each; the global registry mutex is
/// taken only on first use per thread), so tracing adds no cross-thread
/// contention to the hot path. When disabled — the default — the only cost
/// at a call site is one relaxed atomic load.
///
/// Enable/Disable are refcounted so nested capture scopes compose; the
/// transition to the first enable clears previously recorded events.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Per-thread ring capacity used for buffers created while enabled.
  static constexpr std::size_t kDefaultEventsPerThread = 1 << 16;

  void Enable(std::size_t events_per_thread = kDefaultEventsPerThread);
  void Disable();

  /// Cheap global gate, valid for any thread at any time.
  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the recorder epoch (process start), monotone.
  static std::uint64_t NowUs();

  /// Records `event`, filling tid with the calling thread's lane when the
  /// event is real-time and tid was left 0. Drops silently when disabled.
  void Append(TraceEvent event);

  /// A process-unique task id (never 0) for grouping task attempts.
  std::uint64_t NextTaskId() {
    return next_task_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// All retained events across threads, ordered by (t_start_us, pid, tid).
  std::vector<TraceEvent> Snapshot() const;

  /// Events evicted from full rings since the last Clear().
  std::uint64_t dropped_events() const;

  void Clear();

 private:
  struct ThreadBuffer {
    std::mutex mu;
    std::uint32_t tid = 0;
    std::size_t capacity = 0;
    std::size_t next = 0;  // ring write position once full
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;
  };

  TraceRecorder() = default;
  ThreadBuffer& LocalBuffer();

  static std::atomic<bool> enabled_flag_;

  std::atomic<std::uint64_t> next_task_id_{1};
  mutable std::mutex registry_mu_;
  int sessions_ = 0;
  std::size_t events_per_thread_ = kDefaultEventsPerThread;
  std::uint32_t next_tid_ = 0;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: stamps t_start at construction and records a complete event
/// at destruction (or at End()). Construction when tracing is disabled
/// costs one atomic load and records nothing.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category, std::uint32_t round = 0,
            std::uint32_t shard = 0, std::uint64_t task_id = 0);
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }

  /// Attaches an annotation; no-op when the span is inactive.
  void AddArg(TraceArg arg);

  /// Stamps t_end and records the event now instead of at destruction.
  void End();

 private:
  bool active_ = false;
  TraceEvent event_;
};

/// Records a zero-duration instant event; no-op when tracing is disabled.
void TraceInstant(const char* name, const char* category,
                  std::uint32_t round = 0, std::vector<TraceArg> args = {});

}  // namespace mrcost::obs

#endif  // MRCOST_OBS_TRACE_H_
