#ifndef MRCOST_OBS_EXPORT_H_
#define MRCOST_OBS_EXPORT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace.h"

namespace mrcost::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslash, control characters; non-ASCII bytes pass through).
std::string JsonEscape(std::string_view s);

/// Renders events as one Chrome trace_event JSON document
/// ({"traceEvents":[...]}), loadable by Perfetto / chrome://tracing.
/// round/shard/task ids travel in each event's args. Adds process_name
/// metadata records naming pid 0 "mrcost engine" and pid 1
/// "simulated cluster" when simulator events are present.
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

/// Writes ToChromeTraceJson(events) to `path`.
common::Status WriteChromeTraceFile(const std::string& path,
                                    const std::vector<TraceEvent>& events);

/// Parses a document produced by ToChromeTraceJson back into events
/// (metadata records are skipped; round/shard/task args are folded back
/// into the struct fields). Strict about JSON well-formedness — this is
/// the round-trip half used by tests, not a general JSON reader.
common::Result<std::vector<TraceEvent>> ParseChromeTrace(
    std::string_view json);

/// RAII capture scope: enables the global TraceRecorder and Registry on
/// construction; at destruction writes the trace (when trace_path is
/// non-empty) and the registry snapshot JSON (when metrics_path is
/// non-empty), then disables both. Constructing with two empty paths is
/// an inactive no-op, so callers can pass user flags through untouched.
/// Scopes nest: recording stops when the outermost scope closes.
class ScopedCapture {
 public:
  explicit ScopedCapture(std::string trace_path,
                         std::string metrics_path = "");
  ~ScopedCapture();

  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
  std::string trace_path_;
  std::string metrics_path_;
};

/// Scans argv for --trace_out=PATH / --metrics_out=PATH (obs capture) and
/// --spill_dir=PATH / --keep_spills (shuffle spill placement, shared by
/// the external shuffle and the multi-process backend) without consuming
/// them, so examples and benches share one flag convention.
struct CaptureFlags {
  std::string trace_out;
  std::string metrics_out;
  std::string spill_dir;
  bool keep_spills = false;
};
CaptureFlags ParseCaptureFlags(int argc, char** argv);

}  // namespace mrcost::obs

#endif  // MRCOST_OBS_EXPORT_H_
