#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace mrcost::obs {

namespace {

std::string RenderDouble(double value) {
  // Integers render without a fractional part so args like shard counts
  // stay readable; everything else gets shortest-ish round-trip precision.
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      value > -1e15 && value < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch at static-init time so NowUs is monotone from startup.
const bool kEpochInitialized = (ProcessEpoch(), true);

}  // namespace

TraceArg Arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), false};
}
TraceArg Arg(std::string key, const char* value) {
  return TraceArg{std::move(key), value, false};
}
TraceArg Arg(std::string key, double value) {
  return TraceArg{std::move(key), RenderDouble(value), true};
}
TraceArg Arg(std::string key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return TraceArg{std::move(key), buf, true};
}
TraceArg Arg(std::string key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return TraceArg{std::move(key), buf, true};
}
TraceArg Arg(std::string key, std::uint32_t value) {
  return Arg(std::move(key), static_cast<std::uint64_t>(value));
}
TraceArg Arg(std::string key, int value) {
  return Arg(std::move(key), static_cast<std::int64_t>(value));
}

std::atomic<bool> TraceRecorder::enabled_flag_{false};

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

std::uint64_t TraceRecorder::NowUs() {
  (void)kEpochInitialized;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

void TraceRecorder::Enable(std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (sessions_ == 0) {
    events_per_thread_ = events_per_thread == 0 ? kDefaultEventsPerThread
                                                : events_per_thread;
    for (auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      buffer->events.clear();
      buffer->next = 0;
      buffer->dropped = 0;
      buffer->capacity = events_per_thread_;
    }
    enabled_flag_.store(true, std::memory_order_relaxed);
  }
  ++sessions_;
}

void TraceRecorder::Disable() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (sessions_ > 0 && --sessions_ == 0) {
    enabled_flag_.store(false, std::memory_order_relaxed);
  }
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local;
  if (!local) {
    local = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry_mu_);
    local->tid = next_tid_++;
    local->capacity = events_per_thread_;
    buffers_.push_back(local);
  }
  return *local;
}

void TraceRecorder::Append(TraceEvent event) {
  if (!enabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (event.pid == kRealTimePid && event.tid == 0) {
    event.tid = buffer.tid;
  }
  if (buffer.events.size() < buffer.capacity) {
    buffer.events.push_back(std::move(event));
  } else if (buffer.capacity > 0) {
    buffer.events[buffer.next] = std::move(event);
    buffer.next = (buffer.next + 1) % buffer.capacity;
    ++buffer.dropped;
  }
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    // The ring's oldest retained event sits at `next` once wrapped.
    for (std::size_t i = 0; i < buffer->events.size(); ++i) {
      events.push_back(
          buffer->events[(buffer->next + i) % buffer->events.size()]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t_start_us != b.t_start_us) {
                       return a.t_start_us < b.t_start_us;
                     }
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.tid < b.tid;
                   });
  return events;
}

std::uint64_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

TraceSpan::TraceSpan(const char* name, const char* category,
                     std::uint32_t round, std::uint32_t shard,
                     std::uint64_t task_id) {
  if (!TraceRecorder::enabled()) return;
  active_ = true;
  event_.name = name;
  event_.category = category;
  event_.round = round;
  event_.shard = shard;
  event_.task_id = task_id;
  event_.t_start_us = TraceRecorder::NowUs();
}

void TraceSpan::AddArg(TraceArg arg) {
  if (active_) event_.args.push_back(std::move(arg));
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  event_.t_end_us = TraceRecorder::NowUs();
  TraceRecorder::Global().Append(std::move(event_));
}

void TraceInstant(const char* name, const char* category, std::uint32_t round,
                  std::vector<TraceArg> args) {
  if (!TraceRecorder::enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.round = round;
  event.t_start_us = TraceRecorder::NowUs();
  event.t_end_us = event.t_start_us;
  event.args = std::move(args);
  TraceRecorder::Global().Append(std::move(event));
}

}  // namespace mrcost::obs
