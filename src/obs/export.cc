#include "src/obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "src/obs/registry.h"

namespace mrcost::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendEventJson(const TraceEvent& event, std::ostringstream& os) {
  os << "{\"name\":\"" << JsonEscape(event.name) << "\",\"cat\":\""
     << JsonEscape(event.category) << "\",\"ph\":\"" << event.phase << "\"";
  if (event.phase == 'i') {
    os << ",\"s\":\"t\"";
  }
  os << ",\"ts\":" << event.t_start_us;
  if (event.phase == 'X') {
    const std::uint64_t dur =
        event.t_end_us >= event.t_start_us ? event.t_end_us - event.t_start_us
                                           : 0;
    os << ",\"dur\":" << dur;
  }
  os << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid << ",\"args\":{"
     << "\"round\":" << event.round << ",\"shard\":" << event.shard;
  if (event.task_id != 0) {
    os << ",\"task\":" << event.task_id;
  }
  for (const TraceArg& arg : event.args) {
    os << ",\"" << JsonEscape(arg.key) << "\":";
    if (arg.numeric) {
      os << arg.value;
    } else {
      os << "\"" << JsonEscape(arg.value) << "\"";
    }
  }
  os << "}}";
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kRealTimePid
     << ",\"tid\":0,\"args\":{\"name\":\"mrcost engine\"}}";
  bool has_simulated = false;
  for (const TraceEvent& event : events) {
    if (event.pid == kSimulatedPid) {
      has_simulated = true;
      break;
    }
  }
  if (has_simulated) {
    os << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
       << kSimulatedPid
       << ",\"tid\":0,\"args\":{\"name\":\"simulated cluster\"}}";
  }
  // Worker processes of the multi-process backend occupy pids >= 2 (one
  // lane per worker, merged from its Bye payload); name each one that
  // appears.
  std::set<std::uint32_t> worker_pids;
  for (const TraceEvent& event : events) {
    if (event.pid > kSimulatedPid) worker_pids.insert(event.pid);
  }
  for (std::uint32_t pid : worker_pids) {
    os << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"mrcost worker "
       << (pid - kSimulatedPid - 1) << "\"}}";
  }
  for (const TraceEvent& event : events) {
    os << ",\n";
    AppendEventJson(event, os);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

common::Status WriteChromeTraceFile(const std::string& path,
                                    const std::vector<TraceEvent>& events) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::Status::InvalidArgument("cannot open trace file: " + path);
  }
  out << ToChromeTraceJson(events);
  out.flush();
  if (!out) {
    return common::Status::Internal("short write to trace file: " + path);
  }
  return common::Status::Ok();
}

namespace {

/// Minimal strict cursor-based JSON reader — just enough to parse the
/// documents ToChromeTraceJson produces, for round-trip tests and tools.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            // The writer only emits \u00XX for control bytes.
            *out += static_cast<char>(code < 256 ? code : '?');
            break;
          }
          default:
            return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool ParseNumber(double* out, std::string* raw) {
    SkipWs();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    if (raw != nullptr) *raw = token;
    return true;
  }

  /// Skips any well-formed value (used for keys we don't model).
  bool SkipValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '"') {
      std::string scratch;
      return ParseString(&scratch);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      SkipWs();
      if (Consume(close)) return true;
      while (true) {
        if (c == '{') {
          std::string key;
          if (!ParseString(&key) || !Consume(':')) return false;
        }
        if (!SkipValue()) return false;
        if (Consume(close)) return true;
        if (!Consume(',')) return false;
      }
    }
    if (c == 't' && text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (c == 'f' && text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return true;
    }
    if (c == 'n' && text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return true;
    }
    double ignored;
    return ParseNumber(&ignored, nullptr);
  }

  std::size_t pos() const { return pos_; }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

common::Status ParseError(const JsonCursor& cursor, const std::string& what) {
  return common::Status::InvalidArgument(
      "trace JSON parse error near offset " + std::to_string(cursor.pos()) +
      ": " + what);
}

common::Status ParseEventObject(JsonCursor& cursor,
                                std::vector<TraceEvent>* out) {
  if (!cursor.Consume('{')) return ParseError(cursor, "expected event object");
  TraceEvent event;
  bool is_metadata = false;
  double ts = 0, dur = 0, pid = 0, tid = 0;
  if (!cursor.Consume('}')) {
    while (true) {
      std::string key;
      if (!cursor.ParseString(&key) || !cursor.Consume(':')) {
        return ParseError(cursor, "expected event key");
      }
      if (key == "name" || key == "cat" || key == "ph" || key == "s") {
        std::string value;
        if (!cursor.ParseString(&value)) {
          return ParseError(cursor, "expected string for " + key);
        }
        if (key == "name") event.name = value;
        if (key == "cat") event.category = value;
        if (key == "ph") {
          if (value.size() != 1) {
            return ParseError(cursor, "bad ph value: " + value);
          }
          event.phase = value[0];
          if (event.phase == 'M') is_metadata = true;
        }
      } else if (key == "ts" || key == "dur" || key == "pid" ||
                 key == "tid") {
        double value;
        if (!cursor.ParseNumber(&value, nullptr)) {
          return ParseError(cursor, "expected number for " + key);
        }
        if (key == "ts") ts = value;
        if (key == "dur") dur = value;
        if (key == "pid") pid = value;
        if (key == "tid") tid = value;
      } else if (key == "args") {
        if (!cursor.Consume('{')) {
          return ParseError(cursor, "expected args object");
        }
        if (!cursor.Consume('}')) {
          while (true) {
            std::string arg_key;
            if (!cursor.ParseString(&arg_key) || !cursor.Consume(':')) {
              return ParseError(cursor, "expected arg key");
            }
            if (cursor.Peek() == '"') {
              std::string value;
              if (!cursor.ParseString(&value)) {
                return ParseError(cursor, "expected arg string");
              }
              event.args.push_back(TraceArg{arg_key, value, false});
            } else {
              double value;
              std::string raw;
              if (!cursor.ParseNumber(&value, &raw)) {
                return ParseError(cursor, "expected arg value for " + arg_key);
              }
              if (arg_key == "round") {
                event.round = static_cast<std::uint32_t>(value);
              } else if (arg_key == "shard") {
                event.shard = static_cast<std::uint32_t>(value);
              } else if (arg_key == "task") {
                event.task_id = static_cast<std::uint64_t>(value);
              } else {
                event.args.push_back(TraceArg{arg_key, raw, true});
              }
            }
            if (cursor.Consume('}')) break;
            if (!cursor.Consume(',')) {
              return ParseError(cursor, "expected , in args");
            }
          }
        }
      } else {
        if (!cursor.SkipValue()) {
          return ParseError(cursor, "bad value for " + key);
        }
      }
      if (cursor.Consume('}')) break;
      if (!cursor.Consume(',')) {
        return ParseError(cursor, "expected , in event");
      }
    }
  }
  if (!is_metadata) {
    event.pid = static_cast<std::uint32_t>(pid);
    event.tid = static_cast<std::uint32_t>(tid);
    event.t_start_us = static_cast<std::uint64_t>(ts);
    event.t_end_us = static_cast<std::uint64_t>(ts + dur);
    out->push_back(std::move(event));
  }
  return common::Status::Ok();
}

}  // namespace

common::Result<std::vector<TraceEvent>> ParseChromeTrace(
    std::string_view json) {
  JsonCursor cursor(json);
  if (!cursor.Consume('{')) {
    return ParseError(cursor, "expected top-level object");
  }
  std::vector<TraceEvent> events;
  bool saw_events = false;
  if (!cursor.Consume('}')) {
    while (true) {
      std::string key;
      if (!cursor.ParseString(&key) || !cursor.Consume(':')) {
        return ParseError(cursor, "expected top-level key");
      }
      if (key == "traceEvents") {
        saw_events = true;
        if (!cursor.Consume('[')) {
          return ParseError(cursor, "expected traceEvents array");
        }
        if (!cursor.Consume(']')) {
          while (true) {
            common::Status status = ParseEventObject(cursor, &events);
            if (!status.ok()) return status;
            if (cursor.Consume(']')) break;
            if (!cursor.Consume(',')) {
              return ParseError(cursor, "expected , in traceEvents");
            }
          }
        }
      } else {
        if (!cursor.SkipValue()) {
          return ParseError(cursor, "bad top-level value for " + key);
        }
      }
      if (cursor.Consume('}')) break;
      if (!cursor.Consume(',')) {
        return ParseError(cursor, "expected , at top level");
      }
    }
  }
  if (!cursor.AtEnd()) {
    return ParseError(cursor, "trailing content");
  }
  if (!saw_events) {
    return common::Status::InvalidArgument("no traceEvents key in document");
  }
  return events;
}

ScopedCapture::ScopedCapture(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (trace_path_.empty() && metrics_path_.empty()) return;
  active_ = true;
  TraceRecorder::Global().Enable();
  Registry::Global().Enable();
}

ScopedCapture::~ScopedCapture() {
  if (!active_) return;
  if (!trace_path_.empty()) {
    const common::Status status = WriteChromeTraceFile(
        trace_path_, TraceRecorder::Global().Snapshot());
    if (!status.ok()) {
      std::fprintf(stderr, "obs: %s\n", status.ToString().c_str());
    } else {
      const std::uint64_t dropped =
          TraceRecorder::Global().dropped_events();
      if (dropped > 0) {
        std::fprintf(stderr,
                     "obs: trace ring overflow, %" PRIu64
                     " oldest events dropped\n",
                     dropped);
      }
    }
  }
  if (!metrics_path_.empty()) {
    std::ofstream out(metrics_path_, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "obs: cannot open metrics file: %s\n",
                   metrics_path_.c_str());
    } else {
      out << Registry::Global().TakeSnapshot().ToJson() << "\n";
    }
  }
  Registry::Global().Disable();
  TraceRecorder::Global().Disable();
}

CaptureFlags ParseCaptureFlags(int argc, char** argv) {
  CaptureFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kTrace = "--trace_out=";
    constexpr std::string_view kMetrics = "--metrics_out=";
    constexpr std::string_view kSpillDir = "--spill_dir=";
    if (arg.substr(0, kTrace.size()) == kTrace) {
      flags.trace_out = std::string(arg.substr(kTrace.size()));
    } else if (arg.substr(0, kMetrics.size()) == kMetrics) {
      flags.metrics_out = std::string(arg.substr(kMetrics.size()));
    } else if (arg.substr(0, kSpillDir.size()) == kSpillDir) {
      flags.spill_dir = std::string(arg.substr(kSpillDir.size()));
    } else if (arg == "--keep_spills") {
      flags.keep_spills = true;
    }
  }
  return flags;
}

}  // namespace mrcost::obs
