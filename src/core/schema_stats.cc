#include "src/core/schema_stats.h"

#include <algorithm>
#include <sstream>

namespace mrcost::core {

std::string SchemaStats::ToString() const {
  std::ostringstream os;
  os << "inputs=" << num_inputs << " reducers=" << num_reducers
     << " (nonempty " << nonempty_reducers << ")"
     << " assignments=" << total_assignments
     << " max_q=" << max_reducer_load << " r=" << replication_rate;
  return os.str();
}

SchemaStats ComputeSchemaStats(const MappingSchema& schema,
                               std::uint64_t num_inputs) {
  SchemaStats stats;
  stats.num_inputs = num_inputs;
  stats.num_reducers = schema.num_reducers();
  std::vector<std::uint64_t> load(schema.num_reducers(), 0);
  for (InputId input = 0; input < num_inputs; ++input) {
    for (ReducerId r : schema.ReducersOfInput(input)) {
      ++load[r];
      ++stats.total_assignments;
    }
  }
  for (std::uint64_t l : load) {
    if (l > 0) ++stats.nonempty_reducers;
    stats.max_reducer_load = std::max(stats.max_reducer_load, l);
  }
  stats.replication_rate =
      num_inputs == 0 ? 0.0
                      : static_cast<double>(stats.total_assignments) /
                            static_cast<double>(num_inputs);
  return stats;
}

}  // namespace mrcost::core
