#ifndef MRCOST_CORE_COST_MODEL_H_
#define MRCOST_CORE_COST_MODEL_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mrcost::core {

/// The execution-cost model of Section 1.2 / Example 1.1: once the tradeoff
/// curve r = f(q) of a problem is known, the cost of running on a concrete
/// cluster is
///     cost(q) = a * f(q) + b * q + c * q^2
/// where `a` prices communication (proportional to r), `b` prices total
/// processing for reducers with linear work, and `c` adds a wall-clock term
/// for reducers that compare all pairs of inputs (O(q^2) work per reducer).
struct CostModel {
  double communication_weight = 1.0;  // a
  double processing_weight = 0.0;     // b
  double wallclock_weight = 0.0;      // c

  double Cost(double r, double q) const {
    return communication_weight * r + processing_weight * q +
           wallclock_weight * q * q;
  }
};

/// Feedback loop from realized rounds into the cost model. The static
/// model above prices a round assuming reducers spread evenly over
/// workers; a skewed cluster violates that by a measurable factor — the
/// simulated makespan exceeds the perfect-balance floor by
/// load_imbalance x straggler_impact. Executed rounds Observe() those two
/// ratios and an exponential moving average remembers them, so the next
/// Plan::Estimate can scale its wall-clock terms by skew_factor() instead
/// of assuming a balanced cluster. Plain state, no locking: share one
/// instance per planning thread.
class RuntimeCalibration {
 public:
  /// `smoothing` in (0, 1]: weight of the newest observation (1 = only
  /// the latest round counts).
  explicit RuntimeCalibration(double smoothing = 0.3)
      : smoothing_(smoothing) {}

  /// Feeds one executed round's realized skew. Ratios < 1 are clamped to
  /// 1 (a round cannot beat perfect balance).
  void Observe(double load_imbalance, double straggler_impact) {
    const double factor = ClampAtOne(load_imbalance) *
                          ClampAtOne(straggler_impact);
    skew_factor_ = observations_ == 0
                       ? factor
                       : (1.0 - smoothing_) * skew_factor_ +
                             smoothing_ * factor;
    ++observations_;
  }

  /// Multiplier (>= 1) for wall-clock cost estimates: how much slower
  /// than perfect balance the observed cluster has been running. 1.0
  /// until the first observation.
  double skew_factor() const { return skew_factor_; }
  std::size_t observations() const { return observations_; }

  /// Feeds a per-stage residual: realized/predicted for one quantity of
  /// one stage ("map" → replication rate r, "reduce" → max reducer input
  /// q). Unlike Observe(), residuals are not clamped at 1 — a stage the
  /// model consistently over-prices should pull its factor below 1, not
  /// just above. Non-positive ratios (missing predictions) are ignored.
  void ObserveStage(std::string_view stage, double residual_ratio) {
    if (!(residual_ratio > 0.0)) return;
    StageState& state = stages_[std::string(stage)];
    state.factor = state.observations == 0
                       ? residual_ratio
                       : (1.0 - smoothing_) * state.factor +
                             smoothing_ * residual_ratio;
    ++state.observations;
  }

  /// EWMA of realized/predicted for `stage`; 1.0 until observed, so an
  /// uncalibrated stage leaves estimates untouched.
  double stage_factor(std::string_view stage) const {
    const auto it = stages_.find(stage);
    return it == stages_.end() ? 1.0 : it->second.factor;
  }
  std::size_t stage_observations(std::string_view stage) const {
    const auto it = stages_.find(stage);
    return it == stages_.end() ? 0 : it->second.observations;
  }

 private:
  static double ClampAtOne(double x) { return x > 1.0 ? x : 1.0; }

  struct StageState {
    double factor = 1.0;
    std::size_t observations = 0;
  };

  double smoothing_;
  double skew_factor_ = 1.0;
  std::size_t observations_ = 0;
  std::map<std::string, StageState, std::less<>> stages_;
};

/// One point on a tradeoff curve: an algorithm (or bound) achieving
/// replication rate `r` at reducer size `q`.
struct TradeoffPoint {
  double q = 0;
  double r = 0;
  std::string label;
};

/// Returns the point of `curve` minimizing model.Cost; ties broken toward
/// smaller q (more parallelism at equal cost). Precondition: !curve.empty().
TradeoffPoint PickCheapest(const std::vector<TradeoffPoint>& curve,
                           const CostModel& model);

/// Minimizes a unimodal function over [lo, hi] by golden-section search,
/// for continuous cost curves cost(q) = a*f(q) + b*q (+ c*q^2).
/// Returns the minimizing q (within `tol` relative tolerance).
double GoldenSectionMinimize(const std::function<double(double)>& f,
                             double lo, double hi, double tol = 1e-9);

/// Section 1.2 end to end: treats the lower-bound curve r(q) of a recipe
/// as the achievable tradeoff (exact for problems with matching
/// algorithms, e.g. Hamming-1 and matmul) and returns the q in
/// [q_lo, q_hi] minimizing model.Cost(r(q), q). The bound is clamped at
/// the trivial r >= 1.
double OptimalQOnCurve(const struct Recipe& recipe, const CostModel& model,
                       double q_lo, double q_hi);

}  // namespace mrcost::core

#endif  // MRCOST_CORE_COST_MODEL_H_
