#ifndef MRCOST_CORE_COST_MODEL_H_
#define MRCOST_CORE_COST_MODEL_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace mrcost::core {

/// The execution-cost model of Section 1.2 / Example 1.1: once the tradeoff
/// curve r = f(q) of a problem is known, the cost of running on a concrete
/// cluster is
///     cost(q) = a * f(q) + b * q + c * q^2
/// where `a` prices communication (proportional to r), `b` prices total
/// processing for reducers with linear work, and `c` adds a wall-clock term
/// for reducers that compare all pairs of inputs (O(q^2) work per reducer).
struct CostModel {
  double communication_weight = 1.0;  // a
  double processing_weight = 0.0;     // b
  double wallclock_weight = 0.0;      // c

  double Cost(double r, double q) const {
    return communication_weight * r + processing_weight * q +
           wallclock_weight * q * q;
  }
};

/// Feedback loop from realized rounds into the cost model. The static
/// model above prices a round assuming reducers spread evenly over
/// workers; a skewed cluster violates that by a measurable factor — the
/// simulated makespan exceeds the perfect-balance floor by
/// load_imbalance x straggler_impact. Executed rounds Observe() those two
/// ratios and an exponential moving average remembers them, so the next
/// Plan::Estimate can scale its wall-clock terms by skew_factor() instead
/// of assuming a balanced cluster. Plain state, no locking: share one
/// instance per planning thread.
class RuntimeCalibration {
 public:
  /// `smoothing` in (0, 1]: weight of the newest observation (1 = only
  /// the latest round counts).
  explicit RuntimeCalibration(double smoothing = 0.3)
      : smoothing_(smoothing) {}

  /// Feeds one executed round's realized skew. Ratios < 1 are clamped to
  /// 1 (a round cannot beat perfect balance).
  void Observe(double load_imbalance, double straggler_impact) {
    const double factor = ClampAtOne(load_imbalance) *
                          ClampAtOne(straggler_impact);
    skew_factor_ = observations_ == 0
                       ? factor
                       : (1.0 - smoothing_) * skew_factor_ +
                             smoothing_ * factor;
    ++observations_;
  }

  /// Multiplier (>= 1) for wall-clock cost estimates: how much slower
  /// than perfect balance the observed cluster has been running. 1.0
  /// until the first observation.
  double skew_factor() const { return skew_factor_; }
  std::size_t observations() const { return observations_; }

 private:
  static double ClampAtOne(double x) { return x > 1.0 ? x : 1.0; }

  double smoothing_;
  double skew_factor_ = 1.0;
  std::size_t observations_ = 0;
};

/// One point on a tradeoff curve: an algorithm (or bound) achieving
/// replication rate `r` at reducer size `q`.
struct TradeoffPoint {
  double q = 0;
  double r = 0;
  std::string label;
};

/// Returns the point of `curve` minimizing model.Cost; ties broken toward
/// smaller q (more parallelism at equal cost). Precondition: !curve.empty().
TradeoffPoint PickCheapest(const std::vector<TradeoffPoint>& curve,
                           const CostModel& model);

/// Minimizes a unimodal function over [lo, hi] by golden-section search,
/// for continuous cost curves cost(q) = a*f(q) + b*q (+ c*q^2).
/// Returns the minimizing q (within `tol` relative tolerance).
double GoldenSectionMinimize(const std::function<double(double)>& f,
                             double lo, double hi, double tol = 1e-9);

/// Section 1.2 end to end: treats the lower-bound curve r(q) of a recipe
/// as the achievable tradeoff (exact for problems with matching
/// algorithms, e.g. Hamming-1 and matmul) and returns the q in
/// [q_lo, q_hi] minimizing model.Cost(r(q), q). The bound is clamped at
/// the trivial r >= 1.
double OptimalQOnCurve(const struct Recipe& recipe, const CostModel& model,
                       double q_lo, double q_hi);

}  // namespace mrcost::core

#endif  // MRCOST_CORE_COST_MODEL_H_
