#ifndef MRCOST_CORE_SCHEMA_STATS_H_
#define MRCOST_CORE_SCHEMA_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/mapping_schema.h"

namespace mrcost::core {

/// Measured properties of a mapping schema over a problem's full input
/// domain: the realized q_i per reducer and the replication rate
/// r = Sum_i q_i / |I| (Section 2.2's figure of merit).
struct SchemaStats {
  std::uint64_t num_inputs = 0;
  std::uint64_t num_reducers = 0;
  /// Reducers that received at least one input.
  std::uint64_t nonempty_reducers = 0;
  std::uint64_t total_assignments = 0;  // Sum_i q_i
  std::uint64_t max_reducer_load = 0;   // max_i q_i
  double replication_rate = 0.0;

  std::string ToString() const;
};

/// Computes SchemaStats by enumerating every input in [0, num_inputs).
/// `num_inputs` is passed explicitly (rather than taken from a Problem) so
/// that schemas can be measured on domains too large to enumerate outputs
/// for; pass problem.num_inputs() in the common case.
SchemaStats ComputeSchemaStats(const MappingSchema& schema,
                               std::uint64_t num_inputs);

}  // namespace mrcost::core

#endif  // MRCOST_CORE_SCHEMA_STATS_H_
