#ifndef MRCOST_CORE_TRADEOFF_H_
#define MRCOST_CORE_TRADEOFF_H_

#include <vector>

#include "src/core/cost_model.h"
#include "src/core/lower_bound.h"

namespace mrcost::core {

/// Samples the lower-bound curve r = q|O|/(g(q)|I|) of `recipe` at
/// `samples` geometrically spaced reducer sizes in [q_lo, q_hi]; the
/// resulting points form the hyperbola of Figure 1 for plotting/bench
/// tables. Bounds below 1 are clamped to the trivial bound r >= 1 when
/// `clamp` is set.
std::vector<TradeoffPoint> SampleLowerBoundCurve(const Recipe& recipe,
                                                 double q_lo, double q_hi,
                                                 int samples,
                                                 bool clamp = true);

}  // namespace mrcost::core

#endif  // MRCOST_CORE_TRADEOFF_H_
