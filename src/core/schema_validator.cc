#include "src/core/schema_validator.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mrcost::core {

common::Status ValidateSchema(const Problem& problem,
                              const MappingSchema& schema, std::uint64_t q) {
  const std::uint64_t num_inputs = problem.num_inputs();
  const std::uint64_t num_reducers = schema.num_reducers();

  // Materialize the assignment once: per-input reducer lists (sorted for
  // intersection) and per-reducer loads.
  std::vector<std::vector<ReducerId>> reducers_of_input(num_inputs);
  std::vector<std::uint64_t> load(num_reducers, 0);
  for (InputId input = 0; input < num_inputs; ++input) {
    reducers_of_input[input] = schema.ReducersOfInput(input);
    auto& rs = reducers_of_input[input];
    std::sort(rs.begin(), rs.end());
    rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
    for (ReducerId r : rs) {
      if (r >= num_reducers) {
        std::ostringstream os;
        os << schema.name() << ": input " << input
           << " assigned to out-of-range reducer " << r << " (num_reducers="
           << num_reducers << ")";
        return common::Status::Internal(os.str());
      }
      ++load[r];
    }
  }

  // Constraint 1: reducer-size limit.
  for (ReducerId r = 0; r < num_reducers; ++r) {
    if (load[r] > q) {
      std::ostringstream os;
      os << schema.name() << ": reducer " << r << " has " << load[r]
         << " inputs, exceeding q=" << q;
      return common::Status::FailedPrecondition(os.str());
    }
  }

  // Constraint 2: every output covered. Intersect the (sorted) reducer
  // lists of the output's inputs.
  const std::uint64_t num_outputs = problem.num_outputs();
  std::vector<ReducerId> intersection;
  std::vector<ReducerId> next;
  for (OutputId output = 0; output < num_outputs; ++output) {
    const std::vector<InputId> deps = problem.InputsOfOutput(output);
    if (deps.empty()) continue;  // vacuously covered
    intersection = reducers_of_input[deps[0]];
    for (std::size_t i = 1; i < deps.size() && !intersection.empty(); ++i) {
      const auto& rs = reducers_of_input[deps[i]];
      next.clear();
      std::set_intersection(intersection.begin(), intersection.end(),
                            rs.begin(), rs.end(), std::back_inserter(next));
      intersection.swap(next);
    }
    if (intersection.empty()) {
      std::ostringstream os;
      os << schema.name() << ": output " << output
         << " is not covered by any reducer";
      return common::Status::FailedPrecondition(os.str());
    }
  }
  return common::Status::Ok();
}

}  // namespace mrcost::core
