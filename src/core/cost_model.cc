#include "src/core/cost_model.h"

#include <cmath>

#include "src/common/status.h"
#include "src/core/lower_bound.h"

namespace mrcost::core {

TradeoffPoint PickCheapest(const std::vector<TradeoffPoint>& curve,
                           const CostModel& model) {
  MRCOST_CHECK(!curve.empty());
  const TradeoffPoint* best = &curve[0];
  double best_cost = model.Cost(best->r, best->q);
  for (const TradeoffPoint& p : curve) {
    const double cost = model.Cost(p.r, p.q);
    if (cost < best_cost || (cost == best_cost && p.q < best->q)) {
      best = &p;
      best_cost = cost;
    }
  }
  return *best;
}

double GoldenSectionMinimize(const std::function<double(double)>& f,
                             double lo, double hi, double tol) {
  MRCOST_CHECK(lo <= hi);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c), fd = f(d);
  while ((b - a) > tol * (std::abs(a) + std::abs(b) + 1.0)) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
  }
  return (a + b) / 2;
}

double OptimalQOnCurve(const Recipe& recipe, const CostModel& model,
                       double q_lo, double q_hi) {
  MRCOST_CHECK(q_lo > 0 && q_hi >= q_lo);
  // Optimize in log-q space: the curves of interest are hyperbola-like and
  // unimodal there over many orders of magnitude.
  const double log_q = GoldenSectionMinimize(
      [&](double lq) {
        const double q = std::exp(lq);
        return model.Cost(ClampedReplicationLowerBound(recipe, q), q);
      },
      std::log(q_lo), std::log(q_hi));
  return std::exp(log_q);
}

}  // namespace mrcost::core
