#include "src/core/presence.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"

namespace mrcost::core {

std::string PresenceStats::ToString() const {
  std::ostringstream os;
  os << "x=" << presence_probability << " q_t=" << target_q
     << " expected=" << expected_load
     << " realized max " << realized_max_load.ToString()
     << " | rel.dev " << relative_deviation.ToString();
  return os.str();
}

PresenceStats SimulatePresence(const MappingSchema& schema,
                               std::uint64_t num_inputs, double x,
                               int trials, std::uint64_t seed) {
  MRCOST_CHECK(x > 0.0 && x <= 1.0);
  MRCOST_CHECK(trials >= 1);
  PresenceStats stats;
  stats.presence_probability = x;

  // Materialize the assignment once.
  std::vector<std::vector<ReducerId>> assignment(num_inputs);
  std::vector<std::uint64_t> potential(schema.num_reducers(), 0);
  for (InputId input = 0; input < num_inputs; ++input) {
    assignment[input] = schema.ReducersOfInput(input);
    for (ReducerId r : assignment[input]) ++potential[r];
  }
  for (std::uint64_t p : potential) {
    stats.target_q = std::max(stats.target_q, p);
  }
  stats.expected_load = x * static_cast<double>(stats.target_q);

  common::SplitMix64 rng(seed);
  std::vector<std::uint64_t> load(schema.num_reducers());
  for (int t = 0; t < trials; ++t) {
    std::fill(load.begin(), load.end(), 0);
    for (InputId input = 0; input < num_inputs; ++input) {
      if (!rng.Bernoulli(x)) continue;
      for (ReducerId r : assignment[input]) ++load[r];
    }
    std::uint64_t max_load = 0;
    for (ReducerId r = 0; r < schema.num_reducers(); ++r) {
      max_load = std::max(max_load, load[r]);
      if (potential[r] > 0) {
        const double expected = x * static_cast<double>(potential[r]);
        stats.relative_deviation.Add(
            std::abs(static_cast<double>(load[r]) - expected) / expected);
      }
    }
    stats.realized_max_load.Add(static_cast<double>(max_load));
  }
  return stats;
}

}  // namespace mrcost::core
