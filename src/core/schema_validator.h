#ifndef MRCOST_CORE_SCHEMA_VALIDATOR_H_
#define MRCOST_CORE_SCHEMA_VALIDATOR_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/core/mapping_schema.h"
#include "src/core/problem.h"

namespace mrcost::core {

/// Checks the two mapping-schema constraints of Section 2.2 against a
/// problem by exhaustive enumeration:
///   1. no reducer is assigned more than `q` inputs, and
///   2. every output is covered: at least one reducer receives all of the
///      output's inputs.
/// Returns OK iff both hold; otherwise a FailedPrecondition status naming
/// the first violated constraint (and the offending reducer/output).
///
/// Intended for the exhaustive test domains (b <= ~16 bits, n <= ~60 nodes);
/// cost is O(|I| * r + |O| * d * r) where d is the inputs-per-output arity.
common::Status ValidateSchema(const Problem& problem,
                              const MappingSchema& schema, std::uint64_t q);

}  // namespace mrcost::core

#endif  // MRCOST_CORE_SCHEMA_VALIDATOR_H_
