#ifndef MRCOST_CORE_MAPPING_SCHEMA_H_
#define MRCOST_CORE_MAPPING_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/problem.h"

namespace mrcost::core {

/// A mapping schema (Section 2.2): an assignment of each input to a set of
/// reducers. A valid schema for reducer-size limit q must (1) assign at most
/// q inputs to every reducer and (2) cover every output — some reducer
/// receives all of the output's inputs. Validation is performed by
/// ValidateSchema in schema_validator.h.
///
/// Implementations are deterministic pure functions of the input id, which
/// is exactly the paper's independence assumption for mappers (Section 2.3).
class MappingSchema {
 public:
  virtual ~MappingSchema() = default;

  virtual std::string name() const = 0;

  /// Total number of reducers used by the schema; reducer ids are
  /// 0..num_reducers()-1.
  virtual std::uint64_t num_reducers() const = 0;

  /// The reducers to which `input` is sent. The length of this list summed
  /// over all inputs, divided by |I|, is the schema's replication rate.
  virtual std::vector<ReducerId> ReducersOfInput(InputId input) const = 0;
};

/// A schema given by explicit per-input lists, for tests.
class ExplicitSchema final : public MappingSchema {
 public:
  ExplicitSchema(std::string name, std::uint64_t num_reducers,
                 std::vector<std::vector<ReducerId>> assignment)
      : name_(std::move(name)),
        num_reducers_(num_reducers),
        assignment_(std::move(assignment)) {}

  std::string name() const override { return name_; }
  std::uint64_t num_reducers() const override { return num_reducers_; }
  std::vector<ReducerId> ReducersOfInput(InputId input) const override {
    return assignment_[input];
  }

 private:
  std::string name_;
  std::uint64_t num_reducers_;
  std::vector<std::vector<ReducerId>> assignment_;
};

}  // namespace mrcost::core

#endif  // MRCOST_CORE_MAPPING_SCHEMA_H_
