#ifndef MRCOST_CORE_PROBLEM_H_
#define MRCOST_CORE_PROBLEM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mrcost::core {

/// Identifier of a (hypothetical) input in a problem's finite input domain.
using InputId = std::uint64_t;
/// Identifier of a (hypothetical) output.
using OutputId = std::uint64_t;
/// Identifier of a reducer in a mapping schema.
using ReducerId = std::uint64_t;

/// A "problem" in the paper's model (Section 2): finite sets of hypothetical
/// inputs and outputs, plus a mapping from each output to the set of inputs
/// it depends on. Implementations enumerate the full domains, which is what
/// the lower-bound analysis assumes (Section 2.3: all possible inputs are
/// treated as present).
///
/// This interface is the bridge between the paper's abstract model and the
/// concrete problem modules: schema validators and replication-rate
/// calculators are written once against Problem and reused by every module.
class Problem {
 public:
  virtual ~Problem() = default;

  virtual std::string name() const = 0;

  /// |I|: size of the input domain. Inputs are identified by 0..|I|-1.
  virtual std::uint64_t num_inputs() const = 0;

  /// |O|: size of the output domain. Outputs are identified by 0..|O|-1.
  virtual std::uint64_t num_outputs() const = 0;

  /// The set of inputs output `output` is mapped to (Section 2, item 2).
  /// An output can be produced only by a reducer that receives all of them.
  virtual std::vector<InputId> InputsOfOutput(OutputId output) const = 0;
};

/// A problem given by explicit enumeration, for tests and tiny examples
/// (e.g., the natural-join example of Example 2.1 on a 2x2x2 domain).
class ExplicitProblem final : public Problem {
 public:
  ExplicitProblem(std::string name, std::uint64_t num_inputs,
                  std::vector<std::vector<InputId>> outputs)
      : name_(std::move(name)),
        num_inputs_(num_inputs),
        outputs_(std::move(outputs)) {}

  std::string name() const override { return name_; }
  std::uint64_t num_inputs() const override { return num_inputs_; }
  std::uint64_t num_outputs() const override { return outputs_.size(); }
  std::vector<InputId> InputsOfOutput(OutputId output) const override {
    return outputs_[output];
  }

 private:
  std::string name_;
  std::uint64_t num_inputs_;
  std::vector<std::vector<InputId>> outputs_;
};

}  // namespace mrcost::core

#endif  // MRCOST_CORE_PROBLEM_H_
