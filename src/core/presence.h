#ifndef MRCOST_CORE_PRESENCE_H_
#define MRCOST_CORE_PRESENCE_H_

#include <cstdint>
#include <string>

#include "src/common/stats.h"
#include "src/core/mapping_schema.h"

namespace mrcost::core {

/// Section 2.3's presence model, executable: mapping schemas assign
/// *potential* inputs, but any instance contains each input independently
/// with probability x. A reducer assigned q_t potential inputs therefore
/// receives about x * q_t real ones, with vanishing relative deviation as
/// q_t grows — which justifies the paper's q = q_real / x rescaling (and
/// its Section 4.2 use for sparse graphs).
struct PresenceStats {
  double presence_probability = 0.0;
  /// Largest potential assignment over reducers (the schema's q_t).
  std::uint64_t target_q = 0;
  /// x * target_q: the expected realized load of the fullest reducer.
  double expected_load = 0.0;
  /// Across trials: the maximum realized reducer load.
  common::RunningStats realized_max_load;
  /// Across trials and reducers with >= 1 potential input: the relative
  /// deviation |load - x*assigned| / (x*assigned).
  common::RunningStats relative_deviation;

  std::string ToString() const;
};

/// Monte-Carlo simulation of the presence model over `trials` random
/// instances. Enumerates the schema's assignment once (O(|I| * r)), then
/// samples instances. Intended for domains up to ~2^20 inputs.
PresenceStats SimulatePresence(const MappingSchema& schema,
                               std::uint64_t num_inputs, double x,
                               int trials, std::uint64_t seed);

/// The paper's rescaling: to keep the expected realized reducer load at
/// q_real when inputs appear with probability x, budget the schema at
/// q_t = q_real / x potential inputs per reducer (Section 2.3).
inline double EffectiveTargetQ(double q_real, double x) {
  return q_real / x;
}

}  // namespace mrcost::core

#endif  // MRCOST_CORE_PRESENCE_H_
