#include "src/core/lower_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace mrcost::core {

double ReplicationLowerBound(const Recipe& recipe, double q) {
  const double gq = recipe.g(q);
  if (gq <= 0.0) {
    return recipe.num_outputs > 0
               ? std::numeric_limits<double>::infinity()
               : 0.0;
  }
  return q * recipe.num_outputs / (gq * recipe.num_inputs);
}

double ClampedReplicationLowerBound(const Recipe& recipe, double q) {
  return std::max(1.0, ReplicationLowerBound(recipe, q));
}

common::Status CheckMonotoneGOverQ(const Recipe& recipe, double q_lo,
                                   double q_hi, int samples) {
  if (q_lo <= 0 || q_hi < q_lo || samples < 2) {
    return common::Status::InvalidArgument(
        "CheckMonotoneGOverQ: need 0 < q_lo <= q_hi and samples >= 2");
  }
  const double ratio = std::pow(q_hi / q_lo, 1.0 / (samples - 1));
  double prev_q = q_lo;
  double prev = recipe.g(q_lo) / q_lo;
  // Tolerate tiny floating-point wobble.
  constexpr double kSlack = 1e-9;
  for (int i = 1; i < samples; ++i) {
    const double q = q_lo * std::pow(ratio, i);
    const double cur = recipe.g(q) / q;
    if (cur + kSlack * std::abs(cur) < prev) {
      std::ostringstream os;
      os << recipe.problem_name << ": g(q)/q decreases between q=" << prev_q
         << " (" << prev << ") and q=" << q << " (" << cur
         << "); the recipe bound is not valid on this range";
      return common::Status::FailedPrecondition(os.str());
    }
    prev = cur;
    prev_q = q;
  }
  return common::Status::Ok();
}

}  // namespace mrcost::core
