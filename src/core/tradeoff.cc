#include "src/core/tradeoff.h"

#include <cmath>

#include "src/common/status.h"

namespace mrcost::core {

std::vector<TradeoffPoint> SampleLowerBoundCurve(const Recipe& recipe,
                                                 double q_lo, double q_hi,
                                                 int samples, bool clamp) {
  MRCOST_CHECK(q_lo > 0 && q_hi >= q_lo && samples >= 1);
  std::vector<TradeoffPoint> curve;
  curve.reserve(samples);
  const double ratio =
      samples > 1 ? std::pow(q_hi / q_lo, 1.0 / (samples - 1)) : 1.0;
  for (int i = 0; i < samples; ++i) {
    const double q = q_lo * std::pow(ratio, i);
    const double r = clamp ? ClampedReplicationLowerBound(recipe, q)
                           : ReplicationLowerBound(recipe, q);
    curve.push_back(TradeoffPoint{q, r, recipe.problem_name});
  }
  return curve;
}

}  // namespace mrcost::core
