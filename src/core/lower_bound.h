#ifndef MRCOST_CORE_LOWER_BOUND_H_
#define MRCOST_CORE_LOWER_BOUND_H_

#include <functional>
#include <string>

#include "src/common/status.h"

namespace mrcost::core {

/// The generic lower-bound recipe of Section 2.4, as an executable object.
///
/// A recipe consists of the three problem-specific quantities the paper's
/// four steps consume:
///   1. g(q): an upper bound on the number of outputs a reducer with q
///      inputs can cover,
///   2. |I|: the number of inputs, and
///   3. |O|: the number of outputs.
/// Given those, for any reducer-size limit q the replication rate of every
/// valid mapping schema satisfies r >= q*|O| / (g(q)*|I|)  (Equation 4),
/// provided g(q)/q is monotonically increasing in q — the condition under
/// which the paper's "manipulation trick" (Equations 2-3) is sound.
struct Recipe {
  std::string problem_name;
  /// g(q); must be defined for q >= 1.
  std::function<double(double)> g;
  double num_inputs = 0;   // |I|
  double num_outputs = 0;  // |O|
};

/// Equation 4: the lower bound on replication rate at reducer size q.
/// Returns +inf if g(q) == 0 while |O| > 0 (no reducer can cover anything,
/// so no finite schema exists at this q).
double ReplicationLowerBound(const Recipe& recipe, double q);

/// Verifies numerically that g(q)/q is monotonically increasing on
/// [q_lo, q_hi] by sampling `samples` geometrically spaced points.
/// The recipe's bound is only valid where this holds (Section 2.4).
common::Status CheckMonotoneGOverQ(const Recipe& recipe, double q_lo,
                                   double q_hi, int samples = 64);

/// The trivial bound r >= 1 that replaces Equation 4 whenever the recipe
/// bound drops below 1 (discussed for 2-paths in Section 5.4.1).
double ClampedReplicationLowerBound(const Recipe& recipe, double q);

}  // namespace mrcost::core

#endif  // MRCOST_CORE_LOWER_BOUND_H_
