#include "src/dist/coordinator.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "src/dist/rpc.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace mrcost::dist {

namespace {

/// Worker trace lanes: pid 0 is the coordinator's real-time lane, pid 1
/// the simulator's (src/obs/trace.h), workers start at 2.
constexpr std::uint32_t kWorkerPidBase = 2;

std::string DefaultWorkerBinary() {
  std::error_code ec;
  auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return "mrcost-worker";
  return (self.parent_path() / "mrcost-worker").string();
}

}  // namespace

// ----------------------------------------------------------- state machine

void TaskStateMachine::Add(std::uint64_t task_id) {
  MRCOST_CHECK(tasks_.emplace(task_id, Task{}).second);
}

void TaskStateMachine::Assign(std::uint64_t task_id, int worker) {
  auto& task = tasks_.at(task_id);
  MRCOST_CHECK(task.state == State::kPending);
  task.state = State::kRunning;
  task.worker = worker;
  ++task.attempts;
}

std::vector<std::uint64_t> TaskStateMachine::ReassignWorker(int worker) {
  std::vector<std::uint64_t> reassigned;
  for (auto& [id, task] : tasks_) {
    if (task.state == State::kRunning && task.worker == worker) {
      task.state = State::kPending;
      task.worker = -1;
      reassigned.push_back(id);
    }
  }
  return reassigned;
}

bool TaskStateMachine::Commit(std::uint64_t task_id) {
  auto it = tasks_.find(task_id);
  if (it == tasks_.end() || it->second.state == State::kDone) return false;
  it->second.state = State::kDone;
  it->second.worker = -1;
  return true;
}

TaskStateMachine::State TaskStateMachine::state(std::uint64_t task_id) const {
  return tasks_.at(task_id).state;
}

int TaskStateMachine::attempts(std::uint64_t task_id) const {
  return tasks_.at(task_id).attempts;
}

int TaskStateMachine::worker_of(std::uint64_t task_id) const {
  const auto& task = tasks_.at(task_id);
  return task.state == State::kRunning ? task.worker : -1;
}

bool TaskStateMachine::AllDone() const {
  for (const auto& [id, task] : tasks_) {
    if (task.state != State::kDone) return false;
  }
  return true;
}

// ------------------------------------------------------------- coordinator

Coordinator::~Coordinator() { Stop(); }

double Coordinator::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

common::Status Coordinator::Start(const Options& options) {
  // A worker dying mid-write must surface as an EPIPE Status, not a
  // process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);

  options_ = options;
  if (options_.worker_binary.empty()) {
    options_.worker_binary = DefaultWorkerBinary();
  }
  if (options_.num_workers < 1) {
    return common::Status::InvalidArgument(
        "dist: num_workers must be >= 1");
  }
  workers_.resize(options_.num_workers);
  for (int i = 0; i < options_.num_workers; ++i) {
    if (auto status = SpawnWorker(i); !status.ok()) {
      started_ = true;  // so Stop tears down what did spawn
      Stop();
      return status;
    }
  }

  // All workers must check in Ready (plan rebuilt, heartbeats running)
  // before any task flows.
  {
    std::unique_lock<std::mutex> lock(mu_);
    const bool all_ready = cv_.wait_for(
        lock, std::chrono::seconds(60), [this] {
          for (const auto& w : workers_) {
            if (w.live && !w.ready) return false;
          }
          return true;
        });
    int ready = 0;
    for (const auto& w : workers_) ready += (w.live && w.ready) ? 1 : 0;
    if (!all_ready || ready == 0) {
      lock.unlock();
      started_ = true;
      Stop();
      return common::Status::Internal(
          "dist: workers failed to start (" + std::to_string(ready) + "/" +
          std::to_string(options_.num_workers) + " ready) — worker binary " +
          options_.worker_binary);
    }
  }

  monitor_ = std::thread([this] { MonitorLoop(); });
  started_ = true;
  return common::Status::Ok();
}

common::Status Coordinator::SpawnWorker(int index) {
  // Both ends close-on-exec from birth: the parent end must never leak
  // into any child, and the child end is re-exposed as fd 3 by dup2
  // (which clears CLOEXEC on the duplicate).
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0) {
    return common::Status::Internal(std::string("dist: socketpair: ") +
                                    std::strerror(errno));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return common::Status::Internal(std::string("dist: fork: ") +
                                    std::strerror(errno));
  }
  if (pid == 0) {
    // Child: worker end on fd 3, everything else of ours closed by exec
    // (the parent ends carry CLOEXEC; other workers' fds were opened
    // CLOEXEC too, so siblings don't hold each other's sockets open).
    ::close(sv[0]);
    if (sv[1] != 3) {
      ::dup2(sv[1], 3);  // the duplicate is born without CLOEXEC
      ::close(sv[1]);
    } else {
      const int flags = ::fcntl(3, F_GETFD);
      if (flags >= 0) ::fcntl(3, F_SETFD, flags & ~FD_CLOEXEC);
    }
    ::execl(options_.worker_binary.c_str(), "mrcost-worker",
            static_cast<char*>(nullptr));
    std::fprintf(stderr, "dist: exec %s: %s\n",
                 options_.worker_binary.c_str(), std::strerror(errno));
    ::_exit(127);
  }

  // Parent.
  ::close(sv[1]);

  Worker& worker = workers_[index];
  worker.fd = sv[0];
  worker.pid = pid;
  worker.live = true;
  worker.last_heartbeat_ms = NowMs();

  HelloMsg hello;
  hello.worker_index = static_cast<std::uint32_t>(index);
  hello.recipe = options_.recipe;
  hello.args = options_.args;
  hello.spill_dir = options_.spill_dir;
  hello.trace_enabled = options_.trace_enabled ? 1 : 0;
  hello.metrics_enabled = options_.metrics_enabled ? 1 : 0;
  hello.heartbeat_interval_ms = options_.heartbeat_interval_ms;
  const bool victim = index == options_.kill_worker_index;
  // kill_after_fetches supersedes the map-task kill: one victim, one mode.
  hello.self_kill_after_tasks =
      victim && options_.kill_after_fetches == 0
          ? static_cast<std::uint32_t>(options_.kill_after_tasks)
          : 0;
  hello.self_kill_after_fetches =
      victim ? static_cast<std::uint32_t>(options_.kill_after_fetches) : 0;
  hello.shuffle_transport = options_.wire_shuffle ? 1 : 0;
  hello.retain_budget_bytes = options_.retain_budget_bytes;
  hello.coord_now_us = obs::TraceRecorder::NowUs();
  if (auto status = WriteFrame(worker.fd, EncodeHello(hello));
      !status.ok()) {
    return status;
  }

  worker.receiver = std::thread([this, index] { ReceiveLoop(index); });
  return common::Status::Ok();
}

void Coordinator::ReceiveLoop(int index) {
  const int fd = workers_[index].fd;
  std::string payload;
  while (true) {
    auto status = ReadFrame(fd, payload);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      // EOF after Bye (or during teardown) is the clean exit; anything
      // else is a death.
      if (!workers_[index].bye_received && !stopping_) {
        MarkWorkerDead(index, status.ToString().c_str());
      }
      return;
    }
    auto type = PeekType(payload);
    if (!type.ok()) continue;

    switch (*type) {
      case MsgType::kReady: {
        std::lock_guard<std::mutex> lock(mu_);
        workers_[index].ready = true;
        cv_.notify_all();
        break;
      }
      case MsgType::kHeartbeat: {
        std::lock_guard<std::mutex> lock(mu_);
        workers_[index].last_heartbeat_ms = NowMs();
        break;
      }
      case MsgType::kTaskDone: {
        TaskDoneMsg msg;
        if (!DecodeTaskDone(payload, msg).ok()) break;
        std::lock_guard<std::mutex> lock(mu_);
        workers_[index].busy = false;
        workers_[index].last_heartbeat_ms = NowMs();
        if (state_machine_.Commit(msg.task_id)) {
          auto& result = pending_[msg.task_id];
          result.done = true;
          result.worker = index;
          result.msg = std::move(msg);
        } else {
          ++stats_.duplicate_commits;
        }
        cv_.notify_all();
        break;
      }
      case MsgType::kBye: {
        ByeMsg msg;
        if (!DecodeBye(payload, msg).ok()) break;
        std::lock_guard<std::mutex> lock(mu_);
        workers_[index].bye = std::move(msg);
        workers_[index].bye_received = true;
        cv_.notify_all();
        break;
      }
      default:
        break;
    }
  }
}

void Coordinator::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           options_.heartbeat_interval_ms));
    if (stopping_) return;
    const double now = NowMs();
    for (int i = 0; i < static_cast<int>(workers_.size()); ++i) {
      if (workers_[i].live &&
          now - workers_[i].last_heartbeat_ms >
              options_.heartbeat_timeout_ms) {
        MarkWorkerDead(i, "heartbeat timeout");
      }
    }
  }
}

void Coordinator::MarkWorkerDead(int index, const char* cause) {
  Worker& worker = workers_[index];
  if (!worker.live) return;
  worker.live = false;
  worker.busy = false;
  ++stats_.workers_died;
  std::fprintf(stderr, "dist: worker %d (pid %d) died: %s\n", index,
               static_cast<int>(worker.pid), cause);
  // Make death final: a half-dead worker must not keep executing and
  // racing its replacement's writes.
  ::kill(worker.pid, SIGKILL);
  // Wake its receiver thread out of a blocked read; the fd itself is
  // closed at join time in Stop().
  ::shutdown(worker.fd, SHUT_RDWR);
  for (std::uint64_t task_id : state_machine_.ReassignWorker(index)) {
    ++stats_.reissued_tasks;
    pending_[task_id].worker_died = true;
  }
  cv_.notify_all();
}

int Coordinator::AcquireWorker(std::unique_lock<std::mutex>& lock) {
  while (true) {
    bool any_live = false;
    for (int i = 0; i < static_cast<int>(workers_.size()); ++i) {
      if (workers_[i].live && workers_[i].ready) {
        any_live = true;
        if (!workers_[i].busy) return i;
      }
    }
    if (!any_live) return -1;
    cv_.wait(lock);
  }
}

common::Result<std::string> Coordinator::RunTask(
    const std::function<std::string(int attempt, std::uint64_t task_id)>&
        make_frame,
    int* winner) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t task_id = next_task_id_++;
  state_machine_.Add(task_id);
  pending_[task_id] = PendingResult{};

  while (true) {
    pending_[task_id].worker_died = false;
    const int worker = AcquireWorker(lock);
    if (worker < 0) {
      pending_.erase(task_id);
      return common::Status::Internal(
          "dist: all workers dead; cannot run task " +
          std::to_string(task_id));
    }
    state_machine_.Assign(task_id, worker);
    workers_[worker].busy = true;
    const int attempt = state_machine_.attempts(task_id);
    const std::string frame = make_frame(attempt, task_id);
    const int fd = workers_[worker].fd;

    lock.unlock();
    auto status = WriteFrame(fd, frame);
    lock.lock();

    if (!status.ok()) {
      // Broken pipe = the worker died under us. MarkWorkerDead reassigns
      // this task (no-op if the receiver already noticed).
      MarkWorkerDead(worker, status.ToString().c_str());
      continue;
    }
    cv_.wait(lock, [&] {
      return pending_[task_id].done || pending_[task_id].worker_died;
    });
    if (!pending_[task_id].done) continue;  // re-issue on a live worker

    TaskDoneMsg msg = std::move(pending_[task_id].msg);
    if (winner != nullptr) *winner = pending_[task_id].worker;
    pending_.erase(task_id);
    if (!msg.ok) {
      // A retryable failure (wire fetch lost its source worker) maps to
      // kUnavailable so the executor can re-execute the inputs and retry;
      // a deterministic task error stays terminal.
      if (msg.retryable) {
        return common::Status::Unavailable(
            "dist: task failed retryably: " + msg.error);
      }
      return common::Status::Internal("dist: task failed on worker: " +
                                      msg.error);
    }
    return std::move(msg.payload);
  }
}

common::Result<engine::internal::DistMapOutcome> Coordinator::RunMap(
    std::uint32_t node,
    const std::function<engine::internal::DistMapSpec(int attempt)>&
        make_spec,
    std::uint32_t chunk, std::uint32_t num_shards, int* winner) {
  auto payload = RunTask(
      [&](int attempt, std::uint64_t task_id) {
        const auto spec = make_spec(attempt);
        MapTaskMsg msg;
        msg.task_id = task_id;
        msg.node = node;
        msg.chunk = chunk;
        msg.num_shards = num_shards;
        msg.chunk_path = spec.chunk_path;
        msg.run_prefix = spec.run_prefix;
        return EncodeMapTask(msg);
      },
      winner);
  if (!payload.ok()) return payload.status();
  engine::internal::DistMapOutcome outcome;
  if (auto status = DecodeMapOutcome(*payload, outcome); !status.ok()) {
    return status;
  }
  return outcome;
}

common::Result<engine::internal::DistReduceOutcome> Coordinator::RunReduce(
    std::uint32_t node,
    const std::function<engine::internal::DistReduceSpec(int attempt)>&
        make_spec) {
  auto payload = RunTask([&](int attempt, std::uint64_t task_id) {
    const auto spec = make_spec(attempt);
    ReduceTaskMsg msg;
    msg.task_id = task_id;
    msg.node = node;
    msg.shard = spec.shard;
    msg.merge_fan_in = spec.merge_fan_in;
    msg.result_path = spec.result_path;
    msg.scratch_dir = spec.scratch_dir;
    msg.run_paths = spec.run_paths;
    msg.run_endpoints = spec.run_endpoints;
    msg.fetch_credits = spec.fetch_credits;
    return EncodeReduceTask(msg);
  });
  if (!payload.ok()) return payload.status();
  engine::internal::DistReduceOutcome outcome;
  if (auto status = DecodeReduceOutcome(*payload, outcome); !status.ok()) {
    return status;
  }
  return outcome;
}

void Coordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    for (auto& worker : workers_) {
      if (worker.live) {
        (void)WriteFrame(worker.fd, EncodeShutdown());
      }
    }
    cv_.notify_all();
  }
  if (monitor_.joinable()) monitor_.join();

  // Give live workers a moment to deliver Bye, then cut the sockets so
  // every receiver thread unblocks.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::seconds(10), [this] {
      for (const auto& w : workers_) {
        if (w.live && !w.bye_received) return false;
      }
      return true;
    });
    for (auto& worker : workers_) {
      if (worker.fd >= 0) ::shutdown(worker.fd, SHUT_RDWR);
    }
  }
  for (auto& worker : workers_) {
    if (worker.receiver.joinable()) worker.receiver.join();
    if (worker.fd >= 0) {
      ::close(worker.fd);
      worker.fd = -1;
    }
    if (worker.pid > 0) {
      int status = 0;
      ::waitpid(worker.pid, &status, 0);
      worker.pid = -1;
    }
  }

  // Fold the workers' parting obs payloads into this process's sinks,
  // each worker on its own trace pid lane.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& worker = workers_[i];
    if (!worker.bye_received) continue;
    if (!worker.bye.registry_payload.empty()) {
      (void)MergeRegistryPayload(worker.bye.registry_payload,
                                 static_cast<std::uint32_t>(i),
                                 obs::Registry::Global());
    }
    if (!worker.bye.trace_payload.empty()) {
      std::vector<obs::TraceEvent> events;
      if (DecodeTraceEvents(worker.bye.trace_payload, events).ok()) {
        for (auto& event : events) {
          event.pid = kWorkerPidBase + static_cast<std::uint32_t>(i);
          obs::TraceRecorder::Global().Append(std::move(event));
        }
      }
    }
  }
}

bool Coordinator::worker_live(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index >= 0 && index < static_cast<int>(workers_.size()) &&
         workers_[index].live;
}

int Coordinator::num_live_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  for (const auto& w : workers_) live += w.live ? 1 : 0;
  return live;
}

Coordinator::Stats Coordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mrcost::dist
