#ifndef MRCOST_DIST_COORDINATOR_H_
#define MRCOST_DIST_COORDINATOR_H_

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/dist/protocol.h"
#include "src/engine/dist_round.h"

namespace mrcost::dist {

/// Pure task-attempt bookkeeping, separated from the process plumbing so
/// the failure protocol is unit-testable without forking anything.
///
/// Lifecycle per task: Add -> pending; Assign(worker) -> running;
/// Commit -> done (first commit wins — a re-issued attempt that races a
/// slow original is dropped); ReassignWorker(worker) -> every running
/// task on that worker returns to pending with attempts bumped.
class TaskStateMachine {
 public:
  enum class State { kPending, kRunning, kDone };

  /// Registers a task; ids are caller-chosen and must be unique.
  void Add(std::uint64_t task_id);

  /// pending -> running on `worker`. Checks the task is pending.
  void Assign(std::uint64_t task_id, int worker);

  /// Marks every running task on `worker` pending again (the worker
  /// died); returns those task ids. Their next Assign is a new attempt.
  std::vector<std::uint64_t> ReassignWorker(int worker);

  /// running/pending -> done. Returns true for the winning (first)
  /// commit, false for a duplicate from a raced re-issue.
  bool Commit(std::uint64_t task_id);

  State state(std::uint64_t task_id) const;
  /// Attempts started so far (1 after the first Assign).
  int attempts(std::uint64_t task_id) const;
  int worker_of(std::uint64_t task_id) const;  // -1 unless running
  bool AllDone() const;

 private:
  struct Task {
    State state = State::kPending;
    int worker = -1;
    int attempts = 0;
  };
  std::unordered_map<std::uint64_t, Task> tasks_;
};

/// The multi-process runtime: forks/execs N mrcost-worker processes, each
/// on its own AF_UNIX socketpair, and runs map/reduce tasks on them with
/// heartbeat-based failure detection.
///
/// Threads: one receive thread per worker (TaskDone / Heartbeat / Bye),
/// one monitor thread (heartbeat timeouts -> SIGKILL -> re-issue). RunMap
/// and RunReduce are blocking and may be called concurrently from a
/// scheduler's task threads; each call claims an idle live worker, and a
/// task whose worker dies is transparently re-issued (attempt-distinct
/// output paths keep a zombie's partial files from colliding).
class Coordinator {
 public:
  struct Options {
    int num_workers = 2;
    std::string recipe;
    std::string args;
    std::string spill_dir;
    /// Empty = "mrcost-worker" next to /proc/self/exe.
    std::string worker_binary;
    bool trace_enabled = false;
    bool metrics_enabled = false;
    double heartbeat_interval_ms = 100;
    double heartbeat_timeout_ms = 2000;
    /// Fault injection (tests/CI): worker `kill_worker_index` raises
    /// SIGKILL on receiving its `kill_after_tasks`-th map task — or, when
    /// `kill_after_fetches` > 0 (wire transport), right after serving the
    /// first block of its `kill_after_fetches`-th FetchRun instead.
    int kill_worker_index = -1;
    int kill_after_tasks = 1;
    int kill_after_fetches = 0;
    /// kWireStream when true: workers keep runs in their RunRegistry and
    /// open data sockets; reduce tasks fetch runs over the wire.
    bool wire_shuffle = false;
    /// Per-worker cap on RunRegistry in-memory bytes (0 = unbounded).
    std::uint64_t retain_budget_bytes = 0;
  };

  struct Stats {
    std::uint64_t reissued_tasks = 0;
    std::uint64_t workers_died = 0;
    std::uint64_t duplicate_commits = 0;
  };

  Coordinator() = default;
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Spawns the workers and waits for every Ready. On failure the
  /// already-spawned workers are torn down.
  common::Status Start(const Options& options);

  /// Runs one map / reduce task to successful completion, re-issuing
  /// across worker deaths. `make_spec` receives the attempt number so
  /// output paths can be attempt-distinct. Fails only when the task
  /// itself fails on a live worker (a real error, not a death — a
  /// retryable failure maps to kUnavailable so the executor can repair
  /// inputs and retry) or every worker is dead. `winner`, when non-null,
  /// receives the index of the worker whose commit won — for the wire
  /// transport this is the worker now owning the task's runs.
  common::Result<engine::internal::DistMapOutcome> RunMap(
      std::uint32_t node,
      const std::function<engine::internal::DistMapSpec(int attempt)>&
          make_spec,
      std::uint32_t chunk, std::uint32_t num_shards,
      int* winner = nullptr);
  common::Result<engine::internal::DistReduceOutcome> RunReduce(
      std::uint32_t node,
      const std::function<engine::internal::DistReduceSpec(int attempt)>&
          make_spec);

  /// Whether worker `index` is still live (wire transport: whether its
  /// runs are still fetchable).
  bool worker_live(int index) const;

  /// Graceful shutdown: Shutdown to every live worker, merge their Bye
  /// payloads (registry + trace, re-tagged pid = 2 + worker index) into
  /// the global obs sinks, reap all children. Idempotent.
  void Stop();

  int num_live_workers() const;
  Stats stats() const;

 private:
  struct Worker {
    int fd = -1;
    pid_t pid = -1;
    bool live = false;
    bool ready = false;
    bool bye_received = false;
    ByeMsg bye;
    double last_heartbeat_ms = 0;
    bool busy = false;  // has a task in flight
    std::thread receiver;
  };

  struct PendingResult {
    bool done = false;
    bool worker_died = false;
    int worker = -1;  // who committed (set with done)
    TaskDoneMsg msg;
  };

  common::Status SpawnWorker(int index);
  void ReceiveLoop(int index);
  void MonitorLoop();
  void MarkWorkerDead(int index, const char* cause);  // mu_ held
  /// Claims an idle live worker (blocks); -1 when all workers are dead.
  int AcquireWorker(std::unique_lock<std::mutex>& lock);
  /// One task to successful completion across re-issues; returns the
  /// winning TaskDone payload and (optionally) the committing worker.
  common::Result<std::string> RunTask(
      const std::function<std::string(int attempt, std::uint64_t task_id)>&
          make_frame,
      int* winner = nullptr);

  double NowMs() const;

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Worker> workers_;
  TaskStateMachine state_machine_;
  std::unordered_map<std::uint64_t, PendingResult> pending_;
  std::uint64_t next_task_id_ = 1;
  bool started_ = false;
  bool stopping_ = false;
  Stats stats_;
  std::thread monitor_;
};

}  // namespace mrcost::dist

#endif  // MRCOST_DIST_COORDINATOR_H_
