#ifndef MRCOST_DIST_RPC_H_
#define MRCOST_DIST_RPC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace mrcost::dist {

/// Length-prefixed CRC-framed message transport over a byte-stream fd
/// (the coordinator/worker socketpair; tests use pipes). Wire format per
/// frame, little-endian, matching the spill files' framing conventions:
///
///   [u32 payload_len][u32 crc32(payload)][payload bytes]
///
/// ReadFrame's Status contract mirrors SpillFileReader::Next: a clean EOF
/// at a frame boundary returns kNotFound ("eof" — the peer closed its
/// end), a partial frame kOutOfRange ("truncated"), a CRC mismatch
/// kInternal, and an over-limit length kInvalidArgument. Both calls
/// retry EINTR and handle short reads/writes.

/// Frames larger than this are rejected on both sides (a corrupt length
/// prefix must not trigger a giant allocation).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// CRC field value meaning "sender skipped the checksum" — ReadFrame does
/// not verify such frames. The shuffle data plane sends its bulk RunBlock
/// frames unchecked: on a local AF_UNIX socket the kernel already
/// guarantees byte integrity, and checksumming the (deliberately
/// uncompressed) raw columnar frames would be the single largest CPU cost
/// of the transport. Control-plane frames stay checksummed. The sentinel
/// collides with the true CRC of a payload once in 2^32, in which case
/// that one checked frame merely skips verification — the same guarantee
/// an unchecked frame has. (An empty payload's CRC is also 0; verifying
/// it would be vacuous anyway.)
inline constexpr std::uint32_t kUncheckedCrc = 0;

/// `checksum = false` stamps kUncheckedCrc instead of the payload CRC.
common::Status WriteFrame(int fd, std::string_view payload,
                          bool checksum = true);

/// Writes one frame whose payload is the concatenation `head` + `body`
/// without materializing it — a single writev from the caller's buffers.
/// The data plane uses this to frame [u32 msg type][block bytes] straight
/// from the run registry's memory.
common::Status WriteFrameParts(int fd, std::string_view head,
                               std::string_view body, bool checksum = true);

common::Status ReadFrame(int fd, std::string& payload);

/// True iff `status` is ReadFrame's clean-EOF result.
bool IsEof(const common::Status& status);

}  // namespace mrcost::dist

#endif  // MRCOST_DIST_RPC_H_
