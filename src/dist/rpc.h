#ifndef MRCOST_DIST_RPC_H_
#define MRCOST_DIST_RPC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace mrcost::dist {

/// Length-prefixed CRC-framed message transport over a byte-stream fd
/// (the coordinator/worker socketpair; tests use pipes). Wire format per
/// frame, little-endian, matching the spill files' framing conventions:
///
///   [u32 payload_len][u32 crc32(payload)][payload bytes]
///
/// ReadFrame's Status contract mirrors SpillFileReader::Next: a clean EOF
/// at a frame boundary returns kNotFound ("eof" — the peer closed its
/// end), a partial frame kOutOfRange ("truncated"), a CRC mismatch
/// kInternal, and an over-limit length kInvalidArgument. Both calls
/// retry EINTR and handle short reads/writes.

/// Frames larger than this are rejected on both sides (a corrupt length
/// prefix must not trigger a giant allocation).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

common::Status WriteFrame(int fd, std::string_view payload);
common::Status ReadFrame(int fd, std::string& payload);

/// True iff `status` is ReadFrame's clean-EOF result.
bool IsEof(const common::Status& status);

}  // namespace mrcost::dist

#endif  // MRCOST_DIST_RPC_H_
