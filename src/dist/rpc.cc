#include "src/dist/rpc.h"

#include <errno.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "src/storage/spill_file.h"

namespace mrcost::dist {

namespace {

/// Gathered write of the whole iovec list, retrying EINTR and resuming
/// after partial writes by advancing the iovecs in place. One writev puts
/// header + payload into a single syscall on the fast path, so a frame is
/// never split across a scheduling boundary unless the socket buffer
/// forces it — both the RPC channel and the shuffle data channel frame
/// through here.
common::Status WriteAllV(int fd, struct iovec* iov, int iovcnt) {
  std::size_t remaining = 0;
  for (int i = 0; i < iovcnt; ++i) remaining += iov[i].iov_len;
  while (remaining > 0) {
    // Skip iovecs a previous partial write fully consumed.
    while (iovcnt > 0 && iov[0].iov_len == 0) {
      ++iov;
      --iovcnt;
    }
    const ssize_t written = ::writev(fd, iov, iovcnt);
    if (written < 0) {
      if (errno == EINTR) continue;
      return common::Status::Internal(
          std::string("rpc: write failed: ") + std::strerror(errno));
    }
    remaining -= static_cast<std::size_t>(written);
    std::size_t consumed = static_cast<std::size_t>(written);
    for (int i = 0; i < iovcnt && consumed > 0; ++i) {
      const std::size_t take = std::min(consumed, iov[i].iov_len);
      iov[i].iov_base = static_cast<char*>(iov[i].iov_base) + take;
      iov[i].iov_len -= take;
      consumed -= take;
    }
  }
  return common::Status::Ok();
}

/// Reads exactly `n` bytes. `got` reports the bytes read when the stream
/// ends early (0 at the very start = clean EOF).
common::Status ReadAll(int fd, char* data, std::size_t n,
                       std::size_t& got) {
  got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return common::Status::Internal(
          std::string("rpc: read failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      return common::Status::OutOfRange("rpc: truncated frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return common::Status::Ok();
}

}  // namespace

common::Status WriteFrame(int fd, std::string_view payload,
                          bool checksum) {
  return WriteFrameParts(fd, payload, std::string_view(), checksum);
}

common::Status WriteFrameParts(int fd, std::string_view head,
                               std::string_view body, bool checksum) {
  const std::size_t total = head.size() + body.size();
  if (total > kMaxFrameBytes) {
    return common::Status::InvalidArgument(
        "rpc: frame of " + std::to_string(total) +
        " bytes exceeds the frame limit");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(total);
  std::uint32_t crc = kUncheckedCrc;
  if (checksum) {
    crc = storage::Crc32(head.data(), head.size());
    if (!body.empty()) {
      // CRC of the concatenation: resume the running value over `body`.
      crc = storage::Crc32Resume(crc, body.data(), body.size());
    }
  }
  char header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  struct iovec iov[3];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof(header);
  int iovcnt = 1;
  for (std::string_view part : {head, body}) {
    if (part.empty()) continue;
    iov[iovcnt].iov_base = const_cast<char*>(part.data());
    iov[iovcnt].iov_len = part.size();
    ++iovcnt;
  }
  return WriteAllV(fd, iov, iovcnt);
}

common::Status ReadFrame(int fd, std::string& payload) {
  char header[8];
  std::size_t got = 0;
  if (auto status = ReadAll(fd, header, sizeof(header), got);
      !status.ok()) {
    if (got == 0 && status.code() == common::StatusCode::kOutOfRange) {
      return common::Status::NotFound("rpc: eof");
    }
    return status;
  }
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&len, header, 4);
  std::memcpy(&crc, header + 4, 4);
  if (len > kMaxFrameBytes) {
    return common::Status::InvalidArgument(
        "rpc: frame length " + std::to_string(len) +
        " exceeds the frame limit");
  }
  payload.resize(len);
  if (len > 0) {
    if (auto status = ReadAll(fd, payload.data(), len, got); !status.ok()) {
      return status;
    }
  }
  if (crc != kUncheckedCrc &&
      storage::Crc32(payload.data(), payload.size()) != crc) {
    return common::Status::Internal("rpc: frame crc mismatch");
  }
  return common::Status::Ok();
}

bool IsEof(const common::Status& status) {
  return status.code() == common::StatusCode::kNotFound;
}

}  // namespace mrcost::dist
