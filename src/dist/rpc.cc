#include "src/dist/rpc.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

#include "src/storage/spill_file.h"

namespace mrcost::dist {

namespace {

common::Status WriteAll(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t written = ::write(fd, data, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return common::Status::Internal(
          std::string("rpc: write failed: ") + std::strerror(errno));
    }
    data += written;
    n -= static_cast<std::size_t>(written);
  }
  return common::Status::Ok();
}

/// Reads exactly `n` bytes. `got` reports the bytes read when the stream
/// ends early (0 at the very start = clean EOF).
common::Status ReadAll(int fd, char* data, std::size_t n,
                       std::size_t& got) {
  got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return common::Status::Internal(
          std::string("rpc: read failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      return common::Status::OutOfRange("rpc: truncated frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return common::Status::Ok();
}

}  // namespace

common::Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return common::Status::InvalidArgument(
        "rpc: frame of " + std::to_string(payload.size()) +
        " bytes exceeds the frame limit");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = storage::Crc32(payload.data(), payload.size());
  char header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  if (auto status = WriteAll(fd, header, sizeof(header)); !status.ok()) {
    return status;
  }
  return WriteAll(fd, payload.data(), payload.size());
}

common::Status ReadFrame(int fd, std::string& payload) {
  char header[8];
  std::size_t got = 0;
  if (auto status = ReadAll(fd, header, sizeof(header), got);
      !status.ok()) {
    if (got == 0 && status.code() == common::StatusCode::kOutOfRange) {
      return common::Status::NotFound("rpc: eof");
    }
    return status;
  }
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&len, header, 4);
  std::memcpy(&crc, header + 4, 4);
  if (len > kMaxFrameBytes) {
    return common::Status::InvalidArgument(
        "rpc: frame length " + std::to_string(len) +
        " exceeds the frame limit");
  }
  payload.resize(len);
  if (len > 0) {
    if (auto status = ReadAll(fd, payload.data(), len, got); !status.ok()) {
      return status;
    }
  }
  if (storage::Crc32(payload.data(), payload.size()) != crc) {
    return common::Status::Internal("rpc: frame crc mismatch");
  }
  return common::Status::Ok();
}

bool IsEof(const common::Status& status) {
  return status.code() == common::StatusCode::kNotFound;
}

}  // namespace mrcost::dist
