#ifndef MRCOST_DIST_WORKER_H_
#define MRCOST_DIST_WORKER_H_

namespace mrcost::dist {

/// The mrcost-worker process body: speaks the src/dist/protocol.h message
/// set over `fd` (both directions) until Shutdown or coordinator EOF.
///
///   Hello  -> rebuild the plan from the recipe registry, arm obs capture
///             and fault injection, reply Ready, start heartbeating
///   MapTask / ReduceTask -> run the node's DistRoundOps, reply TaskDone
///   Shutdown -> reply Bye (registry snapshot + trace events on the
///             coordinator's clock), return
///
/// Returns a process exit code (0 on a clean Shutdown; non-zero when the
/// session dies early, e.g. a malformed frame or coordinator EOF).
int RunWorker(int fd);

}  // namespace mrcost::dist

#endif  // MRCOST_DIST_WORKER_H_
