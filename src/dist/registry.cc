#include "src/dist/registry.h"

#include <algorithm>
#include <mutex>

#include "src/dist/recipes.h"

namespace mrcost::dist {

PlanRegistry& PlanRegistry::Global() {
  // Builtin registration runs here (not from static initializers, which a
  // static library would drop) exactly once, before any lookup.
  static PlanRegistry* registry = [] {
    auto* r = new PlanRegistry();
    RegisterBuiltinRecipes(*r);
    return r;
  }();
  return *registry;
}

void PlanRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[name] = std::move(factory);
}

common::Result<engine::Plan> PlanRegistry::Build(
    const std::string& name, const std::string& args) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return common::Status::NotFound("dist: unregistered recipe '" + name +
                                      "'");
    }
    factory = it->second;
  }
  return factory(args);
}

std::vector<std::string> PlanRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace mrcost::dist
