#include "src/dist/worker.h"

#include <errno.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/dist/protocol.h"
#include "src/dist/registry.h"
#include "src/dist/rpc.h"
#include "src/engine/dist_round.h"
#include "src/engine/plan.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/storage/wire_run.h"

namespace mrcost::dist {

namespace {

/// All writes to the coordinator (task replies from the main loop,
/// heartbeats from the timer thread) interleave on one fd — serialize
/// them so frames never shear.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  common::Status Send(const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    return WriteFrame(fd_, payload);
  }

 private:
  int fd_;
  std::mutex mu_;
};

/// Heartbeat timer: one Heartbeat{seq} per interval until stopped. A
/// failed send means the coordinator is gone; the thread just stops (the
/// main loop will hit EOF on its own).
class Heartbeater {
 public:
  Heartbeater(FrameWriter& writer, double interval_ms)
      : writer_(writer), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Run(); });
  }

  ~Heartbeater() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    std::uint64_t seq = 0;
    while (!stop_) {
      if (cv_.wait_for(lock,
                       std::chrono::duration<double, std::milli>(
                           interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      lock.unlock();
      const bool ok = writer_.Send(EncodeHeartbeat({++seq})).ok();
      lock.lock();
      if (!ok) return;
    }
  }

  FrameWriter& writer_;
  double interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

TaskDoneMsg FailTask(std::uint64_t task_id, const common::Status& status) {
  TaskDoneMsg done;
  done.task_id = task_id;
  done.ok = 0;
  done.error = status.ToString();
  done.retryable =
      status.code() == common::StatusCode::kUnavailable ? 1 : 0;
  return done;
}

/// The kWireStream data-socket server: an AF_UNIX listener at
/// DataEndpointPath plus one thread per FetchRun connection. Each
/// connection streams a registered run's encoded blocks under the
/// fetcher's credit window: `credits` blocks may be in flight; past that
/// the server blocks reading RunCredit frames, and the time spent blocked
/// is reported in RunEnd (and the dist.credit_wait_ms histogram).
class DataServer {
 public:
  DataServer(storage::RunRegistry& registry,
             std::uint32_t kill_after_fetches)
      : registry_(registry), kill_after_fetches_(kill_after_fetches) {}

  ~DataServer() { Stop(); }

  common::Status Start(const std::string& endpoint) {
    endpoint_ = endpoint;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return common::Status::Internal(
          std::string("data server: socket: ") + std::strerror(errno));
    }
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (endpoint.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return common::Status::InvalidArgument(
          "data server: endpoint path too long: " + endpoint);
    }
    std::memcpy(addr.sun_path, endpoint.c_str(), endpoint.size() + 1);
    ::unlink(endpoint.c_str());
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      return common::Status::Internal("data server: bind " + endpoint +
                                      ": " + std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
      const int err = errno;
      ::close(fd);
      ::unlink(endpoint.c_str());
      return common::Status::Internal(
          std::string("data server: listen: ") + std::strerror(err));
    }
    listen_fd_ = fd;
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return common::Status::Ok();
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
      // Unblock the accept loop and every in-flight Serve read.
      if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
      for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& thread : conn_threads_) thread.join();
    conn_threads_.clear();
    for (int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      ::unlink(endpoint_.c_str());
    }
  }

 private:
  void AcceptLoop() {
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        return;  // Stop() shut the listener down (or it truly broke).
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) {
        ::close(fd);
        return;
      }
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back([this, fd] { Serve(fd); });
    }
  }

  /// One connection: FetchRun frames arrive sequentially; each streams
  /// its run to completion before the next is read.
  void Serve(int fd) {
    std::string payload;
    while (true) {
      if (!ReadFrame(fd, payload).ok()) return;
      auto type = PeekType(payload);
      if (!type.ok() || *type != MsgType::kFetchRun) return;
      FetchRunMsg fetch;
      if (!DecodeFetchRun(payload, fetch).ok()) return;
      const std::uint32_t served = ++fetches_served_;
      const bool kill_armed =
          kill_after_fetches_ > 0 && served == kill_after_fetches_;
      if (!ServeRun(fd, fetch, kill_armed)) return;
    }
  }

  bool ServeRun(int fd, const FetchRunMsg& fetch, bool kill_armed) {
    auto run = registry_.Find(fetch.run_id);
    if (run == nullptr) {
      RunErrorMsg error;
      error.message = "unknown run " + fetch.run_id;
      (void)WriteFrame(fd, EncodeRunError(error));
      return false;
    }
    std::uint32_t credits = fetch.credits > 0 ? fetch.credits : 1;
    std::uint64_t blocks = 0;
    double credit_wait_ms = 0;
    std::string payload;
    auto send_block = [&](std::string_view frame) -> bool {
      while (credits == 0) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!ReadFrame(fd, payload).ok()) return false;
        credit_wait_ms +=
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        RunCreditMsg credit;
        auto type = PeekType(payload);
        if (!type.ok() || *type != MsgType::kRunCredit ||
            !DecodeRunCredit(payload, credit).ok()) {
          return false;
        }
        credits += credit.credits;
      }
      if (!WriteRunBlock(fd, frame).ok()) return false;
      --credits;
      ++blocks;
      if (kill_armed && blocks == 1) {
        // Fault injection: die with this stream truncated — the fetcher
        // sees EOF mid-run, exactly like a real crash.
        ::raise(SIGKILL);
      }
      return true;
    };

    if (run->overflow_path.empty()) {
      for (const std::string& frame : run->frames) {
        if (!send_block(frame)) return false;
      }
    } else {
      auto file = storage::SpillFileReader::Open(run->overflow_path);
      if (!file.ok()) {
        RunErrorMsg error;
        error.message = "overflow read: " + file.status().ToString();
        (void)WriteFrame(fd, EncodeRunError(error));
        return false;
      }
      storage::SpillFileReader reader = std::move(file.value());
      std::string frame;
      while (true) {
        bool done = false;
        if (auto status = reader.Next(frame, done); !status.ok()) {
          RunErrorMsg error;
          error.message = "overflow read: " + status.ToString();
          (void)WriteFrame(fd, EncodeRunError(error));
          return false;
        }
        if (done) break;
        if (!send_block(frame)) return false;
      }
    }

    if (obs::MetricsEnabled()) {
      obs::Registry::Global().ObserveHistogram(
          "dist.credit_wait_ms",
          static_cast<std::uint64_t>(credit_wait_ms));
    }
    RunEndMsg end;
    end.blocks = blocks;
    end.rows = run->rows;
    end.credit_wait_ms = credit_wait_ms;
    return WriteFrame(fd, EncodeRunEnd(end)).ok();
  }

  storage::RunRegistry& registry_;
  std::uint32_t kill_after_fetches_ = 0;
  std::atomic<std::uint32_t> fetches_served_{0};
  std::string endpoint_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;
  bool stopped_ = false;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace

int RunWorker(int fd) {
  // A fetcher can die mid-stream (that is a supported failure mode); the
  // resulting EPIPE must surface as a write error, not kill this worker.
  ::signal(SIGPIPE, SIG_IGN);
  std::string payload;
  if (auto status = ReadFrame(fd, payload); !status.ok()) {
    std::fprintf(stderr, "mrcost-worker: reading Hello: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  HelloMsg hello;
  if (auto type = PeekType(payload);
      !type.ok() || *type != MsgType::kHello) {
    std::fprintf(stderr, "mrcost-worker: expected Hello first\n");
    return 1;
  }
  if (auto status = DecodeHello(payload, hello); !status.ok()) {
    std::fprintf(stderr, "mrcost-worker: bad Hello: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Trace clock sync: the delta between the coordinator's clock at Hello
  // send time and ours at receipt shifts every local timestamp onto the
  // coordinator timeline (socketpair latency is microseconds — well under
  // the span widths the merged trace is read at).
  const std::int64_t clock_offset_us =
      static_cast<std::int64_t>(hello.coord_now_us) -
      static_cast<std::int64_t>(obs::TraceRecorder::NowUs());
  if (hello.trace_enabled) obs::TraceRecorder::Global().Enable();
  if (hello.metrics_enabled) obs::Registry::Global().Enable();

  auto plan = PlanRegistry::Global().Build(hello.recipe, hello.args);
  if (!plan.ok()) {
    std::fprintf(stderr, "mrcost-worker: rebuilding plan: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  const auto& graph = plan->graph();

  // kWireStream: publish runs locally and serve them over the data socket.
  // Both must exist before Ready — the first ReduceTask can dial any
  // worker the moment the coordinator sees every Ready.
  std::unique_ptr<storage::RunRegistry> run_registry;
  std::unique_ptr<DataServer> data_server;
  if (hello.shuffle_transport != 0) {
    run_registry = std::make_unique<storage::RunRegistry>(
        hello.spill_dir + "/ovf-w" + std::to_string(hello.worker_index),
        hello.retain_budget_bytes);
    data_server = std::make_unique<DataServer>(
        *run_registry, hello.self_kill_after_fetches);
    if (auto status = data_server->Start(
            DataEndpointPath(hello.spill_dir, hello.worker_index));
        !status.ok()) {
      std::fprintf(stderr, "mrcost-worker: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  FrameWriter writer(fd);
  if (auto status = writer.Send(EncodeReady()); !status.ok()) {
    std::fprintf(stderr, "mrcost-worker: sending Ready: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  Heartbeater heartbeater(writer, hello.heartbeat_interval_ms);

  std::uint32_t map_tasks_received = 0;
  while (true) {
    if (auto status = ReadFrame(fd, payload); !status.ok()) {
      // Coordinator EOF (it died or closed early) ends the session.
      std::fprintf(stderr, "mrcost-worker[%u]: read: %s\n",
                   hello.worker_index, status.ToString().c_str());
      return IsEof(status) ? 0 : 1;
    }
    auto type = PeekType(payload);
    if (!type.ok()) return 1;

    if (*type == MsgType::kShutdown) break;

    if (*type == MsgType::kMapTask) {
      MapTaskMsg task;
      if (auto status = DecodeMapTask(payload, task); !status.ok()) {
        return 1;
      }
      ++map_tasks_received;
      if (hello.self_kill_after_tasks > 0 &&
          map_tasks_received == hello.self_kill_after_tasks) {
        // Fault injection: die the way a crashed worker dies — no reply,
        // no cleanup, mid-task.
        ::raise(SIGKILL);
      }
      const std::uint64_t t0 = obs::TraceRecorder::NowUs();
      TaskDoneMsg done;
      done.task_id = task.task_id;
      if (task.node >= graph->nodes.size() || !graph->nodes[task.node].dist) {
        done = FailTask(task.task_id,
                        common::Status::InvalidArgument(
                            "dist: node has no dist ops"));
      } else {
        engine::internal::DistMapSpec spec;
        spec.chunk_path = task.chunk_path;
        spec.chunk_index = task.chunk;
        spec.num_shards = task.num_shards;
        spec.run_prefix = task.run_prefix;
        spec.run_registry = run_registry.get();
        auto outcome = graph->nodes[task.node].dist->run_map(spec);
        if (outcome.ok()) {
          done.ok = 1;
          done.payload = EncodeMapOutcome(*outcome);
        } else {
          done = FailTask(task.task_id, outcome.status());
        }
      }
      if (obs::TraceRecorder::enabled()) {
        obs::TraceEvent event;
        event.name = "dist-map";
        event.category = "dist";
        event.round = task.node;
        event.shard = task.chunk;
        event.task_id = task.task_id;
        event.t_start_us = t0;
        event.t_end_us = obs::TraceRecorder::NowUs();
        event.args.push_back(obs::Arg("chunk", task.chunk));
        obs::TraceRecorder::Global().Append(std::move(event));
      }
      if (auto status = writer.Send(EncodeTaskDone(done)); !status.ok()) {
        return 1;
      }
      continue;
    }

    if (*type == MsgType::kReduceTask) {
      ReduceTaskMsg task;
      if (auto status = DecodeReduceTask(payload, task); !status.ok()) {
        return 1;
      }
      const std::uint64_t t0 = obs::TraceRecorder::NowUs();
      TaskDoneMsg done;
      done.task_id = task.task_id;
      if (task.node >= graph->nodes.size() || !graph->nodes[task.node].dist) {
        done = FailTask(task.task_id,
                        common::Status::InvalidArgument(
                            "dist: node has no dist ops"));
      } else {
        engine::internal::DistReduceSpec spec;
        spec.shard = task.shard;
        spec.run_paths = task.run_paths;
        spec.run_endpoints = task.run_endpoints;
        spec.fetch_credits = task.fetch_credits;
        spec.result_path = task.result_path;
        spec.scratch_dir = task.scratch_dir;
        if (task.merge_fan_in > 0) {
          spec.merge_fan_in = static_cast<std::size_t>(task.merge_fan_in);
        }
        auto outcome = graph->nodes[task.node].dist->run_reduce(spec);
        if (outcome.ok()) {
          done.ok = 1;
          done.payload = EncodeReduceOutcome(*outcome);
        } else {
          done = FailTask(task.task_id, outcome.status());
        }
      }
      if (obs::TraceRecorder::enabled()) {
        obs::TraceEvent event;
        event.name = "dist-reduce";
        event.category = "dist";
        event.round = task.node;
        event.shard = task.shard;
        event.task_id = task.task_id;
        event.t_start_us = t0;
        event.t_end_us = obs::TraceRecorder::NowUs();
        event.args.push_back(obs::Arg("shard", task.shard));
        obs::TraceRecorder::Global().Append(std::move(event));
      }
      if (auto status = writer.Send(EncodeTaskDone(done)); !status.ok()) {
        return 1;
      }
      continue;
    }

    std::fprintf(stderr, "mrcost-worker[%u]: unexpected message type %u\n",
                 hello.worker_index, static_cast<unsigned>(*type));
    return 1;
  }

  // Every round has collected before Shutdown arrives, so no fetch can
  // still be in flight — stop serving (and join the server threads) before
  // snapshotting obs state so their histogram writes are all in.
  if (data_server != nullptr) data_server->Stop();

  ByeMsg bye;
  if (hello.metrics_enabled) {
    bye.registry_payload =
        EncodeRegistrySnapshot(obs::Registry::Global().TakeSnapshot());
    obs::Registry::Global().Disable();
  }
  if (hello.trace_enabled) {
    std::vector<obs::TraceEvent> events =
        obs::TraceRecorder::Global().Snapshot();
    for (auto& event : events) {
      event.t_start_us = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(event.t_start_us) + clock_offset_us);
      event.t_end_us = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(event.t_end_us) + clock_offset_us);
    }
    bye.trace_payload = EncodeTraceEvents(events);
    obs::TraceRecorder::Global().Disable();
  }
  if (auto status = writer.Send(EncodeBye(bye)); !status.ok()) {
    return 1;
  }
  return 0;
}

}  // namespace mrcost::dist
