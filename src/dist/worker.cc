#include "src/dist/worker.h"

#include <signal.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/dist/protocol.h"
#include "src/dist/registry.h"
#include "src/dist/rpc.h"
#include "src/engine/dist_round.h"
#include "src/engine/plan.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace mrcost::dist {

namespace {

/// All writes to the coordinator (task replies from the main loop,
/// heartbeats from the timer thread) interleave on one fd — serialize
/// them so frames never shear.
class FrameWriter {
 public:
  explicit FrameWriter(int fd) : fd_(fd) {}

  common::Status Send(const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    return WriteFrame(fd_, payload);
  }

 private:
  int fd_;
  std::mutex mu_;
};

/// Heartbeat timer: one Heartbeat{seq} per interval until stopped. A
/// failed send means the coordinator is gone; the thread just stops (the
/// main loop will hit EOF on its own).
class Heartbeater {
 public:
  Heartbeater(FrameWriter& writer, double interval_ms)
      : writer_(writer), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Run(); });
  }

  ~Heartbeater() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    std::uint64_t seq = 0;
    while (!stop_) {
      if (cv_.wait_for(lock,
                       std::chrono::duration<double, std::milli>(
                           interval_ms_),
                       [this] { return stop_; })) {
        return;
      }
      lock.unlock();
      const bool ok = writer_.Send(EncodeHeartbeat({++seq})).ok();
      lock.lock();
      if (!ok) return;
    }
  }

  FrameWriter& writer_;
  double interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

TaskDoneMsg FailTask(std::uint64_t task_id, const common::Status& status) {
  TaskDoneMsg done;
  done.task_id = task_id;
  done.ok = 0;
  done.error = status.ToString();
  return done;
}

}  // namespace

int RunWorker(int fd) {
  std::string payload;
  if (auto status = ReadFrame(fd, payload); !status.ok()) {
    std::fprintf(stderr, "mrcost-worker: reading Hello: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  HelloMsg hello;
  if (auto type = PeekType(payload);
      !type.ok() || *type != MsgType::kHello) {
    std::fprintf(stderr, "mrcost-worker: expected Hello first\n");
    return 1;
  }
  if (auto status = DecodeHello(payload, hello); !status.ok()) {
    std::fprintf(stderr, "mrcost-worker: bad Hello: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Trace clock sync: the delta between the coordinator's clock at Hello
  // send time and ours at receipt shifts every local timestamp onto the
  // coordinator timeline (socketpair latency is microseconds — well under
  // the span widths the merged trace is read at).
  const std::int64_t clock_offset_us =
      static_cast<std::int64_t>(hello.coord_now_us) -
      static_cast<std::int64_t>(obs::TraceRecorder::NowUs());
  if (hello.trace_enabled) obs::TraceRecorder::Global().Enable();
  if (hello.metrics_enabled) obs::Registry::Global().Enable();

  auto plan = PlanRegistry::Global().Build(hello.recipe, hello.args);
  if (!plan.ok()) {
    std::fprintf(stderr, "mrcost-worker: rebuilding plan: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  const auto& graph = plan->graph();

  FrameWriter writer(fd);
  if (auto status = writer.Send(EncodeReady()); !status.ok()) {
    std::fprintf(stderr, "mrcost-worker: sending Ready: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  Heartbeater heartbeater(writer, hello.heartbeat_interval_ms);

  std::uint32_t map_tasks_received = 0;
  while (true) {
    if (auto status = ReadFrame(fd, payload); !status.ok()) {
      // Coordinator EOF (it died or closed early) ends the session.
      std::fprintf(stderr, "mrcost-worker[%u]: read: %s\n",
                   hello.worker_index, status.ToString().c_str());
      return IsEof(status) ? 0 : 1;
    }
    auto type = PeekType(payload);
    if (!type.ok()) return 1;

    if (*type == MsgType::kShutdown) break;

    if (*type == MsgType::kMapTask) {
      MapTaskMsg task;
      if (auto status = DecodeMapTask(payload, task); !status.ok()) {
        return 1;
      }
      ++map_tasks_received;
      if (hello.self_kill_after_tasks > 0 &&
          map_tasks_received == hello.self_kill_after_tasks) {
        // Fault injection: die the way a crashed worker dies — no reply,
        // no cleanup, mid-task.
        ::raise(SIGKILL);
      }
      const std::uint64_t t0 = obs::TraceRecorder::NowUs();
      TaskDoneMsg done;
      done.task_id = task.task_id;
      if (task.node >= graph->nodes.size() || !graph->nodes[task.node].dist) {
        done = FailTask(task.task_id,
                        common::Status::InvalidArgument(
                            "dist: node has no dist ops"));
      } else {
        engine::internal::DistMapSpec spec;
        spec.chunk_path = task.chunk_path;
        spec.chunk_index = task.chunk;
        spec.num_shards = task.num_shards;
        spec.run_prefix = task.run_prefix;
        auto outcome = graph->nodes[task.node].dist->run_map(spec);
        if (outcome.ok()) {
          done.ok = 1;
          done.payload = EncodeMapOutcome(*outcome);
        } else {
          done = FailTask(task.task_id, outcome.status());
        }
      }
      if (obs::TraceRecorder::enabled()) {
        obs::TraceEvent event;
        event.name = "dist-map";
        event.category = "dist";
        event.round = task.node;
        event.shard = task.chunk;
        event.task_id = task.task_id;
        event.t_start_us = t0;
        event.t_end_us = obs::TraceRecorder::NowUs();
        event.args.push_back(obs::Arg("chunk", task.chunk));
        obs::TraceRecorder::Global().Append(std::move(event));
      }
      if (auto status = writer.Send(EncodeTaskDone(done)); !status.ok()) {
        return 1;
      }
      continue;
    }

    if (*type == MsgType::kReduceTask) {
      ReduceTaskMsg task;
      if (auto status = DecodeReduceTask(payload, task); !status.ok()) {
        return 1;
      }
      const std::uint64_t t0 = obs::TraceRecorder::NowUs();
      TaskDoneMsg done;
      done.task_id = task.task_id;
      if (task.node >= graph->nodes.size() || !graph->nodes[task.node].dist) {
        done = FailTask(task.task_id,
                        common::Status::InvalidArgument(
                            "dist: node has no dist ops"));
      } else {
        engine::internal::DistReduceSpec spec;
        spec.shard = task.shard;
        spec.run_paths = task.run_paths;
        spec.result_path = task.result_path;
        spec.scratch_dir = task.scratch_dir;
        if (task.merge_fan_in > 0) {
          spec.merge_fan_in = static_cast<std::size_t>(task.merge_fan_in);
        }
        auto outcome = graph->nodes[task.node].dist->run_reduce(spec);
        if (outcome.ok()) {
          done.ok = 1;
          done.payload = EncodeReduceOutcome(*outcome);
        } else {
          done = FailTask(task.task_id, outcome.status());
        }
      }
      if (obs::TraceRecorder::enabled()) {
        obs::TraceEvent event;
        event.name = "dist-reduce";
        event.category = "dist";
        event.round = task.node;
        event.shard = task.shard;
        event.task_id = task.task_id;
        event.t_start_us = t0;
        event.t_end_us = obs::TraceRecorder::NowUs();
        event.args.push_back(obs::Arg("shard", task.shard));
        obs::TraceRecorder::Global().Append(std::move(event));
      }
      if (auto status = writer.Send(EncodeTaskDone(done)); !status.ok()) {
        return 1;
      }
      continue;
    }

    std::fprintf(stderr, "mrcost-worker[%u]: unexpected message type %u\n",
                 hello.worker_index, static_cast<unsigned>(*type));
    return 1;
  }

  ByeMsg bye;
  if (hello.metrics_enabled) {
    bye.registry_payload =
        EncodeRegistrySnapshot(obs::Registry::Global().TakeSnapshot());
    obs::Registry::Global().Disable();
  }
  if (hello.trace_enabled) {
    std::vector<obs::TraceEvent> events =
        obs::TraceRecorder::Global().Snapshot();
    for (auto& event : events) {
      event.t_start_us = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(event.t_start_us) + clock_offset_us);
      event.t_end_us = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(event.t_end_us) + clock_offset_us);
    }
    bye.trace_payload = EncodeTraceEvents(events);
    obs::TraceRecorder::Global().Disable();
  }
  if (auto status = writer.Send(EncodeBye(bye)); !status.ok()) {
    return 1;
  }
  return 0;
}

}  // namespace mrcost::dist
