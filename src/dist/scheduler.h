#ifndef MRCOST_DIST_SCHEDULER_H_
#define MRCOST_DIST_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/engine/task_scheduler.h"

namespace mrcost::dist {

/// The multi-process implementation of the engine::TaskScheduler seam.
/// Tasks here are thin RPC drivers — each one blocks inside
/// Coordinator::RunMap/RunReduce while a worker process does the real
/// work — so the pool is sized to keep every worker fed plus slack for
/// dependency bookkeeping, and a "running" span measures the remote
/// execution it is waiting on.
///
/// Dependency semantics match StageGraphExecutor: a task runs once every
/// dependency has finished; Wait() returns when all added tasks have run.
/// No speculation — re-execution on worker death happens below this seam,
/// inside the coordinator's re-issue loop, where worker liveness lives.
class DistTaskScheduler : public engine::TaskScheduler {
 public:
  explicit DistTaskScheduler(int num_workers);
  ~DistTaskScheduler() override;

  TaskId AddTask(engine::StageKind kind, std::uint32_t round_tag,
                 std::vector<TaskId> deps, std::function<void()> fn,
                 bool speculatable = false, const char* trace_name = nullptr,
                 std::uint32_t shard = 0) override;
  void Wait() override;
  engine::TaskSpan SpanOf(TaskId id) const override;
  double NowMs() const override;

 private:
  struct Task {
    engine::StageKind kind = engine::StageKind::kOther;
    std::uint32_t round_tag = 0;
    std::vector<TaskId> deps;
    std::function<void()> fn;
    bool done = false;
    bool started = false;
    engine::TaskSpan span{0, 0};
  };

  void WorkerLoop();
  bool DepsDone(const Task& task) const;  // mu_ held
  TaskId PickRunnable();                  // mu_ held; kNoTask when none

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Task> tasks_;
  std::size_t unfinished_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace mrcost::dist

#endif  // MRCOST_DIST_SCHEDULER_H_
