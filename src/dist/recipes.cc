#include "src/dist/recipes.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/dist/registry.h"
#include "src/graph/generators.h"
#include "src/graph/sample_graph_mr.h"
#include "src/hamming/bitstring.h"
#include "src/hamming/similarity_join.h"
#include "src/join/generators.h"
#include "src/join/hypercube.h"
#include "src/join/query.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"

namespace mrcost::dist {

common::Result<ArgMap> ArgMap::Parse(const std::string& args) {
  ArgMap map;
  std::size_t start = 0;
  while (start < args.size()) {
    std::size_t end = args.find(',', start);
    if (end == std::string::npos) end = args.size();
    if (end > start) {
      const std::string segment = args.substr(start, end - start);
      const std::size_t eq = segment.find('=');
      if (eq == std::string::npos) {
        return common::Status::InvalidArgument(
            "dist: recipe argument '" + segment + "' is not k=v");
      }
      map.values_[segment.substr(0, eq)] = segment.substr(eq + 1);
    }
    start = end + 1;
  }
  return map;
}

std::int64_t ArgMap::GetInt(const std::string& key,
                            std::int64_t fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgMap::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
}

std::string ArgMap::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

namespace {

/// Recipe factories stamp the rebuild identity onto the graph so
/// ExecutePlanGraphMulti can tell workers how to reconstruct this exact
/// plan.
void Stamp(engine::Plan& plan, const std::string& recipe,
           const std::string& args) {
  plan.graph()->dist_recipe = recipe;
  plan.graph()->dist_args = args;
}

common::Result<engine::Plan> BuildHammingSplitting(const std::string& args) {
  auto parsed = ArgMap::Parse(args);
  if (!parsed.ok()) return parsed.status();
  const int b = static_cast<int>(parsed->GetInt("b", 12));
  const int k = static_cast<int>(parsed->GetInt("k", 3));
  const int d = static_cast<int>(parsed->GetInt("d", 1));
  auto built = hamming::BuildSplittingSimilarityJoinPlan(
      hamming::AllStrings(b), b, k, d);
  if (!built.ok()) return built.status();
  engine::Plan plan = built->plan;
  Stamp(plan, "hamming_splitting", args);
  return plan;
}

common::Result<engine::Plan> BuildHammingBall(const std::string& args) {
  auto parsed = ArgMap::Parse(args);
  if (!parsed.ok()) return parsed.status();
  const int b = static_cast<int>(parsed->GetInt("b", 10));
  const int d = static_cast<int>(parsed->GetInt("d", 1));
  auto built =
      hamming::BuildBallSimilarityJoinPlan(hamming::AllStrings(b), b, d);
  if (!built.ok()) return built.status();
  engine::Plan plan = built->plan;
  Stamp(plan, "hamming_ball", args);
  return plan;
}

/// HyperCube plans hold raw pointers into their relations, which must
/// outlive every Execute (src/join/hypercube.h). In-process callers keep
/// them on the stack; recipe-built plans escape the factory, so the
/// relations live in a process-lifetime cache keyed by the args string —
/// the same (recipe, args) always reads the same vectors.
const std::vector<join::Relation>& CachedTriangleRelations(
    const std::string& args, const join::Query& query,
    std::uint64_t tuples, join::Value domain, double exponent,
    std::uint64_t seed) {
  static std::mutex mu;
  static auto* cache =
      new std::map<std::string, std::vector<join::Relation>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(args);
  if (it == cache->end()) {
    it = cache
             ->emplace(args, join::ZipfRelationsForQuery(
                                 query, tuples, domain, exponent, seed))
             .first;
  }
  return it->second;
}

common::Result<engine::Plan> BuildJoinTriangle(const std::string& args) {
  auto parsed = ArgMap::Parse(args);
  if (!parsed.ok()) return parsed.status();
  const auto tuples =
      static_cast<std::uint64_t>(parsed->GetInt("tuples", 2000));
  const auto domain =
      static_cast<join::Value>(parsed->GetInt("domain", 64));
  const double exponent = parsed->GetDouble("exponent", 0.4);
  const int share = static_cast<int>(parsed->GetInt("share", 2));
  const auto seed = static_cast<std::uint64_t>(parsed->GetInt("seed", 7));

  const join::Query query = join::CycleQuery(3);
  const std::vector<join::Relation>& relations = CachedTriangleRelations(
      args, query, tuples, domain, exponent, seed);
  std::vector<const join::Relation*> ptrs;
  ptrs.reserve(relations.size());
  for (const auto& r : relations) ptrs.push_back(&r);
  const std::vector<int> shares(query.num_attributes(), share);
  auto built = join::BuildHyperCubeJoinPlan(query, ptrs, shares, seed);
  if (!built.ok()) return built.status();
  engine::Plan plan = built->plan;
  Stamp(plan, "join_triangle", args);
  return plan;
}

/// Same lifetime story as the join relations: one-phase matmul closures
/// capture tile coordinates but the builder reads the matrices up front,
/// while two-phase reads them lazily per round — cache both to be safe.
const std::pair<matmul::Matrix, matmul::Matrix>& CachedMatrices(
    const std::string& args, int n, std::uint64_t seed) {
  static std::mutex mu;
  static auto* cache = new std::map<
      std::string, std::pair<matmul::Matrix, matmul::Matrix>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(args);
  if (it == cache->end()) {
    matmul::Matrix r(n, n);
    matmul::Matrix s(n, n);
    common::SplitMix64 rng(seed);
    r.FillRandom(rng);
    s.FillRandom(rng);
    it = cache->emplace(args, std::make_pair(std::move(r), std::move(s)))
             .first;
  }
  return it->second;
}

common::Result<engine::Plan> BuildMatmulOnePhase(const std::string& args) {
  auto parsed = ArgMap::Parse(args);
  if (!parsed.ok()) return parsed.status();
  const int n = static_cast<int>(parsed->GetInt("n", 64));
  const int tile = static_cast<int>(parsed->GetInt("tile", 16));
  const auto seed = static_cast<std::uint64_t>(parsed->GetInt("seed", 11));
  const auto& [r, s] = CachedMatrices(args, n, seed);
  auto built = matmul::BuildMultiplyOnePhasePlan(r, s, tile);
  if (!built.ok()) return built.status();
  engine::Plan plan = built->plan;
  Stamp(plan, "matmul_one_phase", args);
  return plan;
}

common::Result<engine::Plan> BuildMatmulTwoPhase(const std::string& args) {
  auto parsed = ArgMap::Parse(args);
  if (!parsed.ok()) return parsed.status();
  const int n = static_cast<int>(parsed->GetInt("n", 64));
  const int s_rows = static_cast<int>(parsed->GetInt("s_rows", 16));
  const int t_js = static_cast<int>(parsed->GetInt("t_js", 16));
  const auto seed = static_cast<std::uint64_t>(parsed->GetInt("seed", 11));
  const auto& [r, s] = CachedMatrices(args, n, seed);
  auto built = matmul::BuildMultiplyTwoPhasePlan(r, s, s_rows, t_js);
  if (!built.ok()) return built.status();
  engine::Plan plan = built->plan;
  Stamp(plan, "matmul_two_phase", args);
  return plan;
}

common::Result<engine::Plan> BuildGraphSample(const std::string& args) {
  auto parsed = ArgMap::Parse(args);
  if (!parsed.ok()) return parsed.status();
  const auto nodes =
      static_cast<graph::NodeId>(parsed->GetInt("nodes", 400));
  const auto edges =
      static_cast<std::uint64_t>(parsed->GetInt("edges", 3000));
  const int k = static_cast<int>(parsed->GetInt("k", 8));
  const auto seed = static_cast<std::uint64_t>(parsed->GetInt("seed", 5));
  const graph::Graph data = graph::RandomGnm(nodes, edges, seed);
  const graph::Graph pattern = graph::CycleGraph(3);  // the triangle
  graph::SampleGraphPlan built =
      graph::BuildSampleGraphPlan(data, pattern, k, seed + 1);
  engine::Plan plan = built.plan;
  Stamp(plan, "graph_sample", args);
  return plan;
}

/// The bench/CI workhorse: `pairs` mixed u64 rows summed into `keys`
/// groups. Pure engine-level shuffle with no family math on top, so
/// bench_distd measures transport and merge, not reduce CPU.
common::Result<engine::Plan> BuildShuffleSweep(const std::string& args) {
  auto parsed = ArgMap::Parse(args);
  if (!parsed.ok()) return parsed.status();
  const auto pairs =
      static_cast<std::uint64_t>(parsed->GetInt("pairs", 100000));
  const auto keys =
      static_cast<std::uint64_t>(parsed->GetInt("keys", 4096));
  const auto seed = static_cast<std::uint64_t>(parsed->GetInt("seed", 1));

  std::vector<std::uint64_t> rows(pairs);
  std::iota(rows.begin(), rows.end(), seed);
  engine::Plan plan;
  auto source = plan.Source(std::move(rows), "shuffle-sweep-source");
  const std::uint64_t num_keys = keys == 0 ? 1 : keys;
  source
      .Map<std::uint64_t, std::uint64_t>(
          [num_keys](const std::uint64_t& row,
                     engine::Emitter<std::uint64_t, std::uint64_t>& emit) {
            // SplitMix64 finalizer as the key mix: spreads sequential rows
            // uniformly over the key space.
            std::uint64_t h = row;
            h ^= h >> 30;
            h *= 0xbf58476d1ce4e5b9ULL;
            h ^= h >> 27;
            h *= 0x94d049bb133111ebULL;
            h ^= h >> 31;
            emit.Emit(h % num_keys, row);
          },
          "shuffle-sweep")
      .template ReduceByKey<std::pair<std::uint64_t, std::uint64_t>>(
          [](const std::uint64_t& key, const std::vector<std::uint64_t>& vs,
             std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) {
            std::uint64_t sum = 0;
            for (std::uint64_t v : vs) sum += v;
            out.push_back({key, sum});
          });
  Stamp(plan, "shuffle_sweep", args);
  return plan;
}

}  // namespace

void RegisterBuiltinRecipes(PlanRegistry& registry) {
  registry.Register("hamming_splitting", BuildHammingSplitting);
  registry.Register("hamming_ball", BuildHammingBall);
  registry.Register("join_triangle", BuildJoinTriangle);
  registry.Register("matmul_one_phase", BuildMatmulOnePhase);
  registry.Register("matmul_two_phase", BuildMatmulTwoPhase);
  registry.Register("graph_sample", BuildGraphSample);
  registry.Register("quickstart", BuildHammingSplitting);
  registry.Register("shuffle_sweep", BuildShuffleSweep);
}

}  // namespace mrcost::dist
