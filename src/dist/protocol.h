#ifndef MRCOST_DIST_PROTOCOL_H_
#define MRCOST_DIST_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/engine/dist_round.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace mrcost::dist {

/// The coordinator/worker message set. Every message travels as one RPC
/// frame (src/dist/rpc.h) whose payload is a u32 message type followed by
/// the serde-encoded body (src/storage/serde.h conventions: trivially
/// copyable fields byte-copied, strings and vectors u64-length-prefixed).
///
///   coordinator -> worker: Hello, MapTask, ReduceTask, Shutdown
///   worker -> coordinator: Ready, TaskDone, Heartbeat, Bye
///
/// The FetchRun family travels worker-to-worker on the per-worker data
/// sockets (the kWireStream shuffle transport), framed identically:
///
///   fetcher -> owner: FetchRun (opens a run stream, grants credits),
///                     RunCredit (returns one credit per consumed block)
///   owner -> fetcher: RunBlock (one encoded spill-v2 block payload),
///                     RunEnd (stream complete), RunError (unknown run)
enum class MsgType : std::uint32_t {
  kHello = 1,
  kMapTask = 2,
  kReduceTask = 3,
  kShutdown = 4,
  kReady = 5,
  kTaskDone = 6,
  kHeartbeat = 7,
  kBye = 8,
  kFetchRun = 9,
  kRunBlock = 10,
  kRunEnd = 11,
  kRunCredit = 12,
  kRunError = 13,
};

/// First message on the wire: identity, the recipe to rebuild, the shared
/// spill dir, obs capture switches, and the fault-injection arming.
struct HelloMsg {
  std::uint32_t worker_index = 0;
  std::string recipe;
  std::string args;
  std::string spill_dir;
  std::uint8_t trace_enabled = 0;
  std::uint8_t metrics_enabled = 0;
  double heartbeat_interval_ms = 100;
  /// > 0 arms fault injection: the worker raises SIGKILL upon receiving
  /// its Nth map task (deterministic "die mid-map" for tests/CI).
  std::uint32_t self_kill_after_tasks = 0;
  /// Coordinator trace clock at send time; the worker offsets its trace
  /// timestamps so both processes share one timeline.
  std::uint64_t coord_now_us = 0;
  /// 1 = kWireStream: the worker opens its data socket before Ready,
  /// keeps map runs in its RunRegistry, and reduce tasks pull runs from
  /// owner workers instead of the shared directory.
  std::uint8_t shuffle_transport = 0;
  /// kWireStream cap on retained run bytes (0 = unbounded); past it new
  /// runs overflow to worker-private files.
  std::uint64_t retain_budget_bytes = 0;
  /// > 0 arms mid-stream fault injection: the worker raises SIGKILL right
  /// after serving the first block of the Nth FetchRun on its data socket
  /// (deterministic "die mid-fetch" for tests/CI).
  std::uint32_t self_kill_after_fetches = 0;
};

/// Where worker `worker_index` listens for FetchRun connections: an
/// AF_UNIX socket inside the shared job directory. Both the worker (bind)
/// and the executor (dial targets in ReduceTask) derive it from here.
std::string DataEndpointPath(const std::string& spill_dir, int worker_index);

struct MapTaskMsg {
  std::uint64_t task_id = 0;
  std::uint32_t node = 0;
  std::uint32_t chunk = 0;
  std::uint32_t num_shards = 1;
  std::string chunk_path;
  std::string run_prefix;
};

struct ReduceTaskMsg {
  std::uint64_t task_id = 0;
  std::uint32_t node = 0;
  std::uint32_t shard = 0;
  std::uint64_t merge_fan_in = 0;
  std::string result_path;
  std::string scratch_dir;
  std::vector<std::string> run_paths;
  /// Parallel to run_paths: the owner worker's data endpoint for a wire
  /// run, "" for a run that lives on disk at run_paths[i]. Empty vector =
  /// all runs on disk (the spill-file transport).
  std::vector<std::string> run_endpoints;
  /// Per-source block credit window for wire fetches (0 = default).
  std::uint32_t fetch_credits = 0;
};

struct TaskDoneMsg {
  std::uint64_t task_id = 0;
  std::uint8_t ok = 0;
  std::string error;
  /// Failure is worth retrying against re-executed inputs (a wire fetch
  /// hit a dead source worker), as opposed to a deterministic task error.
  std::uint8_t retryable = 0;
  /// EncodeMapOutcome / EncodeReduceOutcome bytes when ok.
  std::string payload;
};

struct HeartbeatMsg {
  std::uint64_t seq = 0;
};

/// Opens one run stream on a data socket; `credits` is how many RunBlock
/// frames the owner may have outstanding before waiting for RunCredit.
struct FetchRunMsg {
  std::string run_id;
  std::uint32_t credits = 1;
};

/// Returns credits after the fetcher consumes (decodes) blocks.
struct RunCreditMsg {
  std::uint32_t credits = 1;
};

/// Terminates a run stream; carries the owner-side totals so the fetcher
/// can cross-check and attach the authoritative credit-wait time to its
/// FetchRun span.
struct RunEndMsg {
  std::uint64_t blocks = 0;
  std::uint64_t rows = 0;
  double credit_wait_ms = 0;
};

struct RunErrorMsg {
  std::string message;
};

/// The worker's parting gift: its obs::Registry snapshot and trace events
/// (already shifted onto the coordinator's clock), merged into the
/// coordinator's registry/trace under a per-worker pid lane.
struct ByeMsg {
  std::string registry_payload;
  std::string trace_payload;
};

std::string EncodeHello(const HelloMsg& msg);
std::string EncodeMapTask(const MapTaskMsg& msg);
std::string EncodeReduceTask(const ReduceTaskMsg& msg);
std::string EncodeShutdown();
std::string EncodeReady();
std::string EncodeTaskDone(const TaskDoneMsg& msg);
std::string EncodeHeartbeat(const HeartbeatMsg& msg);
std::string EncodeBye(const ByeMsg& msg);
std::string EncodeFetchRun(const FetchRunMsg& msg);
std::string EncodeRunCredit(const RunCreditMsg& msg);
std::string EncodeRunEnd(const RunEndMsg& msg);
std::string EncodeRunError(const RunErrorMsg& msg);
/// RunBlock is type + raw frame bytes — no length prefix beyond the RPC
/// frame's own, so the fetcher decodes the block as a view into the
/// received payload without another copy.
std::string EncodeRunBlock(std::string_view frame);

/// Streams one RunBlock directly from `frame`'s buffer: a scatter write
/// of [frame header][u32 kRunBlock][frame bytes] with no concatenation
/// copy, sent unchecked (rpc.h kUncheckedCrc) — the bulk data plane's
/// fast path. The receiver still uses ReadFrame + RunBlockView.
common::Status WriteRunBlock(int fd, std::string_view frame);

/// The message type of an encoded payload; kInternal on a short payload.
common::Result<MsgType> PeekType(const std::string& payload);

common::Status DecodeHello(const std::string& payload, HelloMsg& msg);
common::Status DecodeMapTask(const std::string& payload, MapTaskMsg& msg);
common::Status DecodeReduceTask(const std::string& payload,
                                ReduceTaskMsg& msg);
common::Status DecodeTaskDone(const std::string& payload, TaskDoneMsg& msg);
common::Status DecodeHeartbeat(const std::string& payload,
                               HeartbeatMsg& msg);
common::Status DecodeBye(const std::string& payload, ByeMsg& msg);
common::Status DecodeFetchRun(const std::string& payload, FetchRunMsg& msg);
common::Status DecodeRunCredit(const std::string& payload,
                               RunCreditMsg& msg);
common::Status DecodeRunEnd(const std::string& payload, RunEndMsg& msg);
common::Status DecodeRunError(const std::string& payload, RunErrorMsg& msg);
/// The block bytes of a RunBlock payload, viewing into `payload` — valid
/// only while the payload string is alive and unmodified.
common::Result<std::string_view> RunBlockView(const std::string& payload);

/// Task-result payloads inside TaskDoneMsg.
std::string EncodeMapOutcome(const engine::internal::DistMapOutcome& out);
common::Status DecodeMapOutcome(const std::string& payload,
                                engine::internal::DistMapOutcome& out);
std::string EncodeReduceOutcome(
    const engine::internal::DistReduceOutcome& out);
common::Status DecodeReduceOutcome(
    const std::string& payload, engine::internal::DistReduceOutcome& out);

/// Obs payloads inside ByeMsg. Decoding merges rather than replaces:
/// counters add, stats/histograms Merge, gauges land prefixed with
/// "workerN." (last-write-wins would otherwise drop all but one worker).
std::string EncodeRegistrySnapshot(const obs::Registry::Snapshot& snapshot);
common::Status MergeRegistryPayload(const std::string& payload,
                                    std::uint32_t worker_index,
                                    obs::Registry& registry);
std::string EncodeTraceEvents(const std::vector<obs::TraceEvent>& events);
common::Status DecodeTraceEvents(const std::string& payload,
                                 std::vector<obs::TraceEvent>& events);

}  // namespace mrcost::dist

#endif  // MRCOST_DIST_PROTOCOL_H_
