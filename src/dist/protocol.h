#ifndef MRCOST_DIST_PROTOCOL_H_
#define MRCOST_DIST_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/engine/dist_round.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace mrcost::dist {

/// The coordinator/worker message set. Every message travels as one RPC
/// frame (src/dist/rpc.h) whose payload is a u32 message type followed by
/// the serde-encoded body (src/storage/serde.h conventions: trivially
/// copyable fields byte-copied, strings and vectors u64-length-prefixed).
///
///   coordinator -> worker: Hello, MapTask, ReduceTask, Shutdown
///   worker -> coordinator: Ready, TaskDone, Heartbeat, Bye
enum class MsgType : std::uint32_t {
  kHello = 1,
  kMapTask = 2,
  kReduceTask = 3,
  kShutdown = 4,
  kReady = 5,
  kTaskDone = 6,
  kHeartbeat = 7,
  kBye = 8,
};

/// First message on the wire: identity, the recipe to rebuild, the shared
/// spill dir, obs capture switches, and the fault-injection arming.
struct HelloMsg {
  std::uint32_t worker_index = 0;
  std::string recipe;
  std::string args;
  std::string spill_dir;
  std::uint8_t trace_enabled = 0;
  std::uint8_t metrics_enabled = 0;
  double heartbeat_interval_ms = 100;
  /// > 0 arms fault injection: the worker raises SIGKILL upon receiving
  /// its Nth map task (deterministic "die mid-map" for tests/CI).
  std::uint32_t self_kill_after_tasks = 0;
  /// Coordinator trace clock at send time; the worker offsets its trace
  /// timestamps so both processes share one timeline.
  std::uint64_t coord_now_us = 0;
};

struct MapTaskMsg {
  std::uint64_t task_id = 0;
  std::uint32_t node = 0;
  std::uint32_t chunk = 0;
  std::uint32_t num_shards = 1;
  std::string chunk_path;
  std::string run_prefix;
};

struct ReduceTaskMsg {
  std::uint64_t task_id = 0;
  std::uint32_t node = 0;
  std::uint32_t shard = 0;
  std::uint64_t merge_fan_in = 0;
  std::string result_path;
  std::string scratch_dir;
  std::vector<std::string> run_paths;
};

struct TaskDoneMsg {
  std::uint64_t task_id = 0;
  std::uint8_t ok = 0;
  std::string error;
  /// EncodeMapOutcome / EncodeReduceOutcome bytes when ok.
  std::string payload;
};

struct HeartbeatMsg {
  std::uint64_t seq = 0;
};

/// The worker's parting gift: its obs::Registry snapshot and trace events
/// (already shifted onto the coordinator's clock), merged into the
/// coordinator's registry/trace under a per-worker pid lane.
struct ByeMsg {
  std::string registry_payload;
  std::string trace_payload;
};

std::string EncodeHello(const HelloMsg& msg);
std::string EncodeMapTask(const MapTaskMsg& msg);
std::string EncodeReduceTask(const ReduceTaskMsg& msg);
std::string EncodeShutdown();
std::string EncodeReady();
std::string EncodeTaskDone(const TaskDoneMsg& msg);
std::string EncodeHeartbeat(const HeartbeatMsg& msg);
std::string EncodeBye(const ByeMsg& msg);

/// The message type of an encoded payload; kInternal on a short payload.
common::Result<MsgType> PeekType(const std::string& payload);

common::Status DecodeHello(const std::string& payload, HelloMsg& msg);
common::Status DecodeMapTask(const std::string& payload, MapTaskMsg& msg);
common::Status DecodeReduceTask(const std::string& payload,
                                ReduceTaskMsg& msg);
common::Status DecodeTaskDone(const std::string& payload, TaskDoneMsg& msg);
common::Status DecodeHeartbeat(const std::string& payload,
                               HeartbeatMsg& msg);
common::Status DecodeBye(const std::string& payload, ByeMsg& msg);

/// Task-result payloads inside TaskDoneMsg.
std::string EncodeMapOutcome(const engine::internal::DistMapOutcome& out);
common::Status DecodeMapOutcome(const std::string& payload,
                                engine::internal::DistMapOutcome& out);
std::string EncodeReduceOutcome(
    const engine::internal::DistReduceOutcome& out);
common::Status DecodeReduceOutcome(
    const std::string& payload, engine::internal::DistReduceOutcome& out);

/// Obs payloads inside ByeMsg. Decoding merges rather than replaces:
/// counters add, stats/histograms Merge, gauges land prefixed with
/// "workerN." (last-write-wins would otherwise drop all but one worker).
std::string EncodeRegistrySnapshot(const obs::Registry::Snapshot& snapshot);
common::Status MergeRegistryPayload(const std::string& payload,
                                    std::uint32_t worker_index,
                                    obs::Registry& registry);
std::string EncodeTraceEvents(const std::vector<obs::TraceEvent>& events);
common::Status DecodeTraceEvents(const std::string& payload,
                                 std::vector<obs::TraceEvent>& events);

}  // namespace mrcost::dist

#endif  // MRCOST_DIST_PROTOCOL_H_
