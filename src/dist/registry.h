#ifndef MRCOST_DIST_REGISTRY_H_
#define MRCOST_DIST_REGISTRY_H_

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/engine/plan.h"

namespace mrcost::dist {

/// Plans carry typed closures, and closures cannot cross a process
/// boundary — but a deterministic *recipe* for rebuilding the plan can.
/// The registry maps a recipe name + argument string to a factory linked
/// into both the coordinator and the mrcost-worker binary; both sides
/// build the identical PlanGraph (same nodes, same closures, same
/// indices), and tasks then reference rounds by node index. Factories
/// stamp graph->dist_recipe/dist_args so an executing plan knows its own
/// rebuild instructions.
class PlanRegistry {
 public:
  using Factory =
      std::function<common::Result<engine::Plan>(const std::string& args)>;

  /// The process-wide registry, with the built-in family recipes
  /// (src/dist/recipes.h) registered on first use.
  static PlanRegistry& Global();

  void Register(const std::string& name, Factory factory);

  /// Rebuilds the plan `name` with `args`; kNotFound for an unregistered
  /// name. Deterministic: equal (name, args) build equal graphs in every
  /// process.
  common::Result<engine::Plan> Build(const std::string& name,
                                     const std::string& args) const;

  std::vector<std::string> Names() const;

 private:
  PlanRegistry() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace mrcost::dist

#endif  // MRCOST_DIST_REGISTRY_H_
