#include "src/dist/protocol.h"

#include <tuple>
#include <utility>

#include "src/dist/rpc.h"
#include "src/storage/serde.h"

namespace mrcost::dist {

namespace {

using storage::DeserializeValue;
using storage::SerializeValue;

void AppendType(MsgType type, std::string& out) {
  SerializeValue(static_cast<std::uint32_t>(type), out);
}

common::Status Corrupt(const char* what) {
  return common::Status::Internal(std::string("protocol: corrupt ") + what);
}

/// Reads past the type word; callers already dispatched on PeekType.
common::Status OpenBody(const std::string& payload, const char*& p,
                        const char*& end) {
  p = payload.data();
  end = p + payload.size();
  std::uint32_t type = 0;
  if (!DeserializeValue(p, end, type)) return Corrupt("type");
  return common::Status::Ok();
}

}  // namespace

std::string DataEndpointPath(const std::string& spill_dir,
                             int worker_index) {
  return spill_dir + "/w" + std::to_string(worker_index) + ".sock";
}

std::string EncodeHello(const HelloMsg& msg) {
  std::string out;
  AppendType(MsgType::kHello, out);
  SerializeValue(msg.worker_index, out);
  SerializeValue(msg.recipe, out);
  SerializeValue(msg.args, out);
  SerializeValue(msg.spill_dir, out);
  SerializeValue(msg.trace_enabled, out);
  SerializeValue(msg.metrics_enabled, out);
  SerializeValue(msg.heartbeat_interval_ms, out);
  SerializeValue(msg.self_kill_after_tasks, out);
  SerializeValue(msg.coord_now_us, out);
  SerializeValue(msg.shuffle_transport, out);
  SerializeValue(msg.retain_budget_bytes, out);
  SerializeValue(msg.self_kill_after_fetches, out);
  return out;
}

common::Status DecodeHello(const std::string& payload, HelloMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.worker_index) ||
      !DeserializeValue(p, end, msg.recipe) ||
      !DeserializeValue(p, end, msg.args) ||
      !DeserializeValue(p, end, msg.spill_dir) ||
      !DeserializeValue(p, end, msg.trace_enabled) ||
      !DeserializeValue(p, end, msg.metrics_enabled) ||
      !DeserializeValue(p, end, msg.heartbeat_interval_ms) ||
      !DeserializeValue(p, end, msg.self_kill_after_tasks) ||
      !DeserializeValue(p, end, msg.coord_now_us) ||
      !DeserializeValue(p, end, msg.shuffle_transport) ||
      !DeserializeValue(p, end, msg.retain_budget_bytes) ||
      !DeserializeValue(p, end, msg.self_kill_after_fetches)) {
    return Corrupt("hello");
  }
  return common::Status::Ok();
}

std::string EncodeMapTask(const MapTaskMsg& msg) {
  std::string out;
  AppendType(MsgType::kMapTask, out);
  SerializeValue(msg.task_id, out);
  SerializeValue(msg.node, out);
  SerializeValue(msg.chunk, out);
  SerializeValue(msg.num_shards, out);
  SerializeValue(msg.chunk_path, out);
  SerializeValue(msg.run_prefix, out);
  return out;
}

common::Status DecodeMapTask(const std::string& payload, MapTaskMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.task_id) ||
      !DeserializeValue(p, end, msg.node) ||
      !DeserializeValue(p, end, msg.chunk) ||
      !DeserializeValue(p, end, msg.num_shards) ||
      !DeserializeValue(p, end, msg.chunk_path) ||
      !DeserializeValue(p, end, msg.run_prefix)) {
    return Corrupt("map task");
  }
  return common::Status::Ok();
}

std::string EncodeReduceTask(const ReduceTaskMsg& msg) {
  std::string out;
  AppendType(MsgType::kReduceTask, out);
  SerializeValue(msg.task_id, out);
  SerializeValue(msg.node, out);
  SerializeValue(msg.shard, out);
  SerializeValue(msg.merge_fan_in, out);
  SerializeValue(msg.result_path, out);
  SerializeValue(msg.scratch_dir, out);
  SerializeValue(msg.run_paths, out);
  SerializeValue(msg.run_endpoints, out);
  SerializeValue(msg.fetch_credits, out);
  return out;
}

common::Status DecodeReduceTask(const std::string& payload,
                                ReduceTaskMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.task_id) ||
      !DeserializeValue(p, end, msg.node) ||
      !DeserializeValue(p, end, msg.shard) ||
      !DeserializeValue(p, end, msg.merge_fan_in) ||
      !DeserializeValue(p, end, msg.result_path) ||
      !DeserializeValue(p, end, msg.scratch_dir) ||
      !DeserializeValue(p, end, msg.run_paths) ||
      !DeserializeValue(p, end, msg.run_endpoints) ||
      !DeserializeValue(p, end, msg.fetch_credits)) {
    return Corrupt("reduce task");
  }
  return common::Status::Ok();
}

std::string EncodeShutdown() {
  std::string out;
  AppendType(MsgType::kShutdown, out);
  return out;
}

std::string EncodeReady() {
  std::string out;
  AppendType(MsgType::kReady, out);
  return out;
}

std::string EncodeTaskDone(const TaskDoneMsg& msg) {
  std::string out;
  AppendType(MsgType::kTaskDone, out);
  SerializeValue(msg.task_id, out);
  SerializeValue(msg.ok, out);
  SerializeValue(msg.error, out);
  SerializeValue(msg.retryable, out);
  SerializeValue(msg.payload, out);
  return out;
}

common::Status DecodeTaskDone(const std::string& payload,
                              TaskDoneMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.task_id) ||
      !DeserializeValue(p, end, msg.ok) ||
      !DeserializeValue(p, end, msg.error) ||
      !DeserializeValue(p, end, msg.retryable) ||
      !DeserializeValue(p, end, msg.payload)) {
    return Corrupt("task done");
  }
  return common::Status::Ok();
}

std::string EncodeHeartbeat(const HeartbeatMsg& msg) {
  std::string out;
  AppendType(MsgType::kHeartbeat, out);
  SerializeValue(msg.seq, out);
  return out;
}

common::Status DecodeHeartbeat(const std::string& payload,
                               HeartbeatMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.seq)) return Corrupt("heartbeat");
  return common::Status::Ok();
}

std::string EncodeBye(const ByeMsg& msg) {
  std::string out;
  AppendType(MsgType::kBye, out);
  SerializeValue(msg.registry_payload, out);
  SerializeValue(msg.trace_payload, out);
  return out;
}

common::Status DecodeBye(const std::string& payload, ByeMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.registry_payload) ||
      !DeserializeValue(p, end, msg.trace_payload)) {
    return Corrupt("bye");
  }
  return common::Status::Ok();
}

std::string EncodeFetchRun(const FetchRunMsg& msg) {
  std::string out;
  AppendType(MsgType::kFetchRun, out);
  SerializeValue(msg.run_id, out);
  SerializeValue(msg.credits, out);
  return out;
}

common::Status DecodeFetchRun(const std::string& payload,
                              FetchRunMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.run_id) ||
      !DeserializeValue(p, end, msg.credits)) {
    return Corrupt("fetch run");
  }
  return common::Status::Ok();
}

std::string EncodeRunCredit(const RunCreditMsg& msg) {
  std::string out;
  AppendType(MsgType::kRunCredit, out);
  SerializeValue(msg.credits, out);
  return out;
}

common::Status DecodeRunCredit(const std::string& payload,
                               RunCreditMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.credits)) return Corrupt("run credit");
  return common::Status::Ok();
}

std::string EncodeRunEnd(const RunEndMsg& msg) {
  std::string out;
  AppendType(MsgType::kRunEnd, out);
  SerializeValue(msg.blocks, out);
  SerializeValue(msg.rows, out);
  SerializeValue(msg.credit_wait_ms, out);
  return out;
}

common::Status DecodeRunEnd(const std::string& payload, RunEndMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.blocks) ||
      !DeserializeValue(p, end, msg.rows) ||
      !DeserializeValue(p, end, msg.credit_wait_ms)) {
    return Corrupt("run end");
  }
  return common::Status::Ok();
}

std::string EncodeRunError(const RunErrorMsg& msg) {
  std::string out;
  AppendType(MsgType::kRunError, out);
  SerializeValue(msg.message, out);
  return out;
}

common::Status DecodeRunError(const std::string& payload,
                              RunErrorMsg& msg) {
  const char* p = nullptr;
  const char* end = nullptr;
  if (auto status = OpenBody(payload, p, end); !status.ok()) return status;
  if (!DeserializeValue(p, end, msg.message)) return Corrupt("run error");
  return common::Status::Ok();
}

std::string EncodeRunBlock(std::string_view frame) {
  std::string out;
  out.reserve(sizeof(std::uint32_t) + frame.size());
  AppendType(MsgType::kRunBlock, out);
  out.append(frame.data(), frame.size());
  return out;
}

common::Status WriteRunBlock(int fd, std::string_view frame) {
  std::string head;
  AppendType(MsgType::kRunBlock, head);
  return WriteFrameParts(fd, head, frame, /*checksum=*/false);
}

common::Result<std::string_view> RunBlockView(const std::string& payload) {
  if (payload.size() < sizeof(std::uint32_t)) return Corrupt("run block");
  return std::string_view(payload).substr(sizeof(std::uint32_t));
}

common::Result<MsgType> PeekType(const std::string& payload) {
  const char* p = payload.data();
  const char* end = p + payload.size();
  std::uint32_t type = 0;
  if (!DeserializeValue(p, end, type)) return Corrupt("type");
  if (type < static_cast<std::uint32_t>(MsgType::kHello) ||
      type > static_cast<std::uint32_t>(MsgType::kRunError)) {
    return common::Status::Internal("protocol: unknown message type " +
                                    std::to_string(type));
  }
  return static_cast<MsgType>(type);
}

std::string EncodeMapOutcome(const engine::internal::DistMapOutcome& out) {
  std::string payload;
  std::vector<std::tuple<std::uint32_t, std::uint64_t, std::string>> runs;
  runs.reserve(out.runs.size());
  for (const auto& run : out.runs) {
    runs.emplace_back(run.shard, run.rows, run.path);
  }
  SerializeValue(runs, payload);
  SerializeValue(out.raw_pairs, payload);
  SerializeValue(out.pairs, payload);
  SerializeValue(out.bytes, payload);
  SerializeValue(out.blocks_emitted, payload);
  SerializeValue(out.bytes_copied, payload);
  SerializeValue(out.spill_bytes_written, payload);
  SerializeValue(out.encode_raw_bytes, payload);
  SerializeValue(out.encode_encoded_bytes, payload);
  return payload;
}

common::Status DecodeMapOutcome(const std::string& payload,
                                engine::internal::DistMapOutcome& out) {
  const char* p = payload.data();
  const char* end = p + payload.size();
  std::vector<std::tuple<std::uint32_t, std::uint64_t, std::string>> runs;
  if (!DeserializeValue(p, end, runs) ||
      !DeserializeValue(p, end, out.raw_pairs) ||
      !DeserializeValue(p, end, out.pairs) ||
      !DeserializeValue(p, end, out.bytes) ||
      !DeserializeValue(p, end, out.blocks_emitted) ||
      !DeserializeValue(p, end, out.bytes_copied) ||
      !DeserializeValue(p, end, out.spill_bytes_written) ||
      !DeserializeValue(p, end, out.encode_raw_bytes) ||
      !DeserializeValue(p, end, out.encode_encoded_bytes)) {
    return Corrupt("map outcome");
  }
  out.runs.clear();
  out.runs.reserve(runs.size());
  for (auto& [shard, rows, path] : runs) {
    out.runs.push_back(
        engine::internal::DistRunInfo{shard, rows, std::move(path)});
  }
  return common::Status::Ok();
}

std::string EncodeReduceOutcome(
    const engine::internal::DistReduceOutcome& out) {
  std::string payload;
  SerializeValue(out.keys, payload);
  SerializeValue(out.outputs, payload);
  SerializeValue(out.max_group, payload);
  SerializeValue(out.merge_passes, payload);
  SerializeValue(out.spill_bytes_written, payload);
  return payload;
}

common::Status DecodeReduceOutcome(
    const std::string& payload, engine::internal::DistReduceOutcome& out) {
  const char* p = payload.data();
  const char* end = p + payload.size();
  if (!DeserializeValue(p, end, out.keys) ||
      !DeserializeValue(p, end, out.outputs) ||
      !DeserializeValue(p, end, out.max_group) ||
      !DeserializeValue(p, end, out.merge_passes) ||
      !DeserializeValue(p, end, out.spill_bytes_written)) {
    return Corrupt("reduce outcome");
  }
  return common::Status::Ok();
}

std::string EncodeRegistrySnapshot(
    const obs::Registry::Snapshot& snapshot) {
  std::string payload;
  std::vector<std::pair<std::string, std::uint64_t>> counters(
      snapshot.counters.begin(), snapshot.counters.end());
  std::vector<std::pair<std::string, double>> gauges(
      snapshot.gauges.begin(), snapshot.gauges.end());
  // RunningStats is trivially copyable; serde byte-copies it exactly.
  std::vector<std::pair<std::string, common::RunningStats>> stats(
      snapshot.stats.begin(), snapshot.stats.end());
  std::vector<std::tuple<std::string, std::int64_t,
                         std::vector<std::int64_t>>>
      histograms;
  histograms.reserve(snapshot.histograms.size());
  for (const auto& [name, histogram] : snapshot.histograms) {
    std::vector<std::int64_t> buckets(histogram.num_buckets());
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      buckets[i] = histogram.bucket(i);
    }
    histograms.emplace_back(name, histogram.zeros(), std::move(buckets));
  }
  SerializeValue(counters, payload);
  SerializeValue(gauges, payload);
  SerializeValue(stats, payload);
  SerializeValue(histograms, payload);
  return payload;
}

common::Status MergeRegistryPayload(const std::string& payload,
                                    std::uint32_t worker_index,
                                    obs::Registry& registry) {
  const char* p = payload.data();
  const char* end = p + payload.size();
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, common::RunningStats>> stats;
  std::vector<std::tuple<std::string, std::int64_t,
                         std::vector<std::int64_t>>>
      histograms;
  if (!DeserializeValue(p, end, counters) ||
      !DeserializeValue(p, end, gauges) ||
      !DeserializeValue(p, end, stats) ||
      !DeserializeValue(p, end, histograms)) {
    return Corrupt("registry snapshot");
  }
  for (const auto& [name, value] : counters) {
    registry.AddCounter(name, value);
  }
  const std::string prefix =
      "worker" + std::to_string(worker_index) + ".";
  for (const auto& [name, value] : gauges) {
    registry.SetGauge(prefix + name, value);
  }
  for (const auto& [name, value] : stats) {
    registry.MergeStats(name, value);
  }
  for (const auto& [name, zeros, buckets] : histograms) {
    common::Log2Histogram histogram;
    histogram.AddZeros(zeros);
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      histogram.AddBucketCount(i, buckets[i]);
    }
    registry.MergeHistogram(name, histogram);
  }
  return common::Status::Ok();
}

std::string EncodeTraceEvents(const std::vector<obs::TraceEvent>& events) {
  std::string payload;
  SerializeValue(static_cast<std::uint64_t>(events.size()), payload);
  for (const obs::TraceEvent& event : events) {
    SerializeValue(event.name, payload);
    SerializeValue(event.category, payload);
    SerializeValue(static_cast<std::uint8_t>(event.phase), payload);
    SerializeValue(event.pid, payload);
    SerializeValue(event.tid, payload);
    SerializeValue(event.round, payload);
    SerializeValue(event.shard, payload);
    SerializeValue(event.task_id, payload);
    SerializeValue(event.t_start_us, payload);
    SerializeValue(event.t_end_us, payload);
    std::vector<std::tuple<std::string, std::string, std::uint8_t>> args;
    args.reserve(event.args.size());
    for (const obs::TraceArg& arg : event.args) {
      args.emplace_back(arg.key, arg.value,
                        static_cast<std::uint8_t>(arg.numeric));
    }
    SerializeValue(args, payload);
  }
  return payload;
}

common::Status DecodeTraceEvents(const std::string& payload,
                                 std::vector<obs::TraceEvent>& events) {
  const char* p = payload.data();
  const char* end = p + payload.size();
  std::uint64_t count = 0;
  if (!DeserializeValue(p, end, count)) return Corrupt("trace events");
  events.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    obs::TraceEvent event;
    std::uint8_t phase = 0;
    std::vector<std::tuple<std::string, std::string, std::uint8_t>> args;
    if (!DeserializeValue(p, end, event.name) ||
        !DeserializeValue(p, end, event.category) ||
        !DeserializeValue(p, end, phase) ||
        !DeserializeValue(p, end, event.pid) ||
        !DeserializeValue(p, end, event.tid) ||
        !DeserializeValue(p, end, event.round) ||
        !DeserializeValue(p, end, event.shard) ||
        !DeserializeValue(p, end, event.task_id) ||
        !DeserializeValue(p, end, event.t_start_us) ||
        !DeserializeValue(p, end, event.t_end_us) ||
        !DeserializeValue(p, end, args)) {
      return Corrupt("trace event");
    }
    event.phase = static_cast<char>(phase);
    event.args.reserve(args.size());
    for (auto& [key, value, numeric] : args) {
      event.args.push_back(obs::TraceArg{std::move(key), std::move(value),
                                         numeric != 0});
    }
    events.push_back(std::move(event));
  }
  return common::Status::Ok();
}

}  // namespace mrcost::dist
