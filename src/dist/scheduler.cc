#include "src/dist/scheduler.h"

#include <algorithm>
#include <utility>

namespace mrcost::dist {

DistTaskScheduler::DistTaskScheduler(int num_workers)
    : epoch_(std::chrono::steady_clock::now()) {
  // Every thread may block in a coordinator RPC; num_workers of them keep
  // all workers busy, the extra two cover dependency-edge latency.
  const int threads = std::max(1, num_workers) + 2;
  threads_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

DistTaskScheduler::~DistTaskScheduler() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

DistTaskScheduler::TaskId DistTaskScheduler::AddTask(
    engine::StageKind kind, std::uint32_t round_tag,
    std::vector<TaskId> deps, std::function<void()> fn, bool /*speculatable*/,
    const char* /*trace_name*/, std::uint32_t /*shard*/) {
  TaskId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = tasks_.size();
    Task task;
    task.kind = kind;
    task.round_tag = round_tag;
    task.deps = std::move(deps);
    task.fn = std::move(fn);
    tasks_.push_back(std::move(task));
    ++unfinished_;
  }
  cv_.notify_all();
  return id;
}

bool DistTaskScheduler::DepsDone(const Task& task) const {
  for (TaskId dep : task.deps) {
    if (dep != kNoTask && !tasks_[dep].done) return false;
  }
  return true;
}

DistTaskScheduler::TaskId DistTaskScheduler::PickRunnable() {
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (!tasks_[id].started && DepsDone(tasks_[id])) return id;
  }
  return kNoTask;
}

void DistTaskScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    const TaskId id = PickRunnable();
    if (id == kNoTask) {
      if (shutdown_) return;
      cv_.wait(lock);
      continue;
    }
    Task& task = tasks_[id];
    task.started = true;
    task.span.begin_ms = NowMs();
    std::function<void()> fn = std::move(task.fn);
    lock.unlock();
    fn();
    lock.lock();
    tasks_[id].span.end_ms = NowMs();
    tasks_[id].done = true;
    --unfinished_;
    cv_.notify_all();
  }
}

void DistTaskScheduler::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return unfinished_ == 0; });
}

engine::TaskSpan DistTaskScheduler::SpanOf(TaskId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_[id].span;
}

double DistTaskScheduler::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

}  // namespace mrcost::dist
