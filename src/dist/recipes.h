#ifndef MRCOST_DIST_RECIPES_H_
#define MRCOST_DIST_RECIPES_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/status.h"
#include "src/engine/plan.h"

namespace mrcost::dist {

class PlanRegistry;

/// Registers the built-in recipes (one per algorithm family plus the bench
/// shuffle sweep) into `registry`. Called once by PlanRegistry::Global().
///
/// Built-ins (args are "k=v,k=v" with the defaults shown):
///   hamming_splitting  b=12,k=3,d=1        Splitting-schema similarity join
///                                          over all 2^b strings
///   hamming_ball       b=10,d=1            Ball-2 schema over all 2^b strings
///   join_triangle      tuples=2000,domain=64,exponent=0.4,share=2,seed=7
///                                          HyperCube triangle (cycle-3) join
///                                          over Zipf relations
///   matmul_one_phase   n=64,tile=16,seed=11    Section 6.2 tiled multiply
///   matmul_two_phase   n=64,s_rows=16,t_js=16,seed=11
///                                          Section 6.3 two-round multiply
///   graph_sample       nodes=400,edges=3000,k=8,seed=5
///                                          triangle enumeration over G(n, m)
///   quickstart         (alias of hamming_splitting)
///   shuffle_sweep      pairs=100000,keys=4096,seed=1
///                                          synthetic sum-by-key shuffle used
///                                          by bench_distd
void RegisterBuiltinRecipes(PlanRegistry& registry);

/// "k=v,k=v" argument strings with typed defaulting accessors.
/// Unknown keys are kept (and ignored by readers) so recipes can grow
/// arguments without breaking old strings.
class ArgMap {
 public:
  /// kInvalidArgument on a segment without '='.
  static common::Result<ArgMap> Parse(const std::string& args);

  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mrcost::dist

#endif  // MRCOST_DIST_RECIPES_H_
