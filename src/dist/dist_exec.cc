// The multi-process lowering of ExecutePlanGraph: the same round loop as
// src/engine/plan.cc's in-process path, but each round's map and reduce
// tasks run in mrcost-worker processes via dist::Coordinator, with spill
// v2 run files in a shared job directory as the shuffle. Declared in
// plan.h (engine::internal::ExecutePlanGraphMulti), defined here so the
// engine library does not depend on the dist layer's headers from its own.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/temp_dir.h"
#include "src/dist/coordinator.h"
#include "src/dist/scheduler.h"
#include "src/engine/executor.h"
#include "src/engine/plan.h"
#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/storage/spill_file.h"

namespace mrcost::engine::internal {

PipelineMetrics ExecutePlanGraphMulti(PlanGraph& graph,
                                      const ExecutionOptions& options,
                                      std::size_t target) {
  // Only the target's ancestry runs, as in-process.
  std::vector<bool> needed(graph.nodes.size(), target == kNoNode);
  for (std::size_t id = target; id != kNoNode && id < graph.nodes.size();
       id = graph.nodes[id].input) {
    needed[id] = true;
  }

  // A plan can only cross process boundaries when workers can rebuild it
  // (a registered recipe) and every needed round's types crossed the
  // serde gate at plan-build time. Anything else runs in-process with a
  // warning — per plan, not per round, so one job never splits across
  // runtimes.
  bool can_distribute = !graph.dist_recipe.empty();
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    if (needed[id] && !graph.nodes[id].is_source &&
        graph.nodes[id].dist == nullptr) {
      can_distribute = false;
    }
  }
  if (!can_distribute) {
    std::fprintf(stderr,
                 "mrcost: plan cannot run multi-process (%s); falling back "
                 "to in-process (%s)\n",
                 graph.dist_recipe.empty() ? "not a registered dist recipe"
                                           : "non-serializable rounds",
                 graph.dist_recipe.empty() ? "stamp it via dist::PlanRegistry"
                                           : "types must pass IsSerdeSerializable");
    ExecutionOptions fallback = options;
    fallback.backend = ExecutionBackend::kInProcess;
    return ExecutePlanGraph(graph, fallback, target);
  }

  std::optional<obs::ScopedCapture> capture;
  if (!options.trace_out.empty() || !options.metrics_out.empty()) {
    capture.emplace(options.trace_out, options.metrics_out);
  }
  const bool trace_on = obs::TraceRecorder::enabled();
  const bool metrics_on = obs::MetricsEnabled();

  // The shared shuffle directory. Always a fresh unique dir (under the
  // requested base when given) so concurrent jobs never collide;
  // keep_spills pins it for post-mortems.
  auto job_dir_result =
      common::TempDir::Create(options.dist.spill_dir, "mrcost-distd-");
  MRCOST_CHECK_OK(job_dir_result.status());
  common::TempDir job_dir = std::move(*job_dir_result);
  if (options.dist.keep_spills) job_dir.Keep();

  const bool wire =
      options.dist.shuffle_transport == ShuffleTransport::kWireStream;

  dist::Coordinator coordinator;
  {
    dist::Coordinator::Options copts;
    copts.num_workers = std::max(1, options.dist.num_workers);
    copts.recipe = graph.dist_recipe;
    copts.args = graph.dist_args;
    copts.spill_dir = job_dir.path();
    copts.worker_binary = options.dist.worker_binary;
    copts.trace_enabled = trace_on;
    copts.metrics_enabled = metrics_on;
    copts.heartbeat_interval_ms = options.dist.heartbeat_interval_ms;
    copts.heartbeat_timeout_ms = options.dist.heartbeat_timeout_ms;
    copts.kill_worker_index = options.dist.kill_worker_index;
    copts.kill_after_tasks = options.dist.kill_after_tasks;
    copts.kill_after_fetches = options.dist.kill_after_fetches;
    copts.wire_shuffle = wire;
    copts.retain_budget_bytes = options.dist.retain_budget_bytes;
    // A backend the caller asked for that cannot start is fatal, not a
    // silent fallback: CI byte-identity smokes must never "pass" by
    // quietly running in-process.
    MRCOST_CHECK_OK(coordinator.Start(copts));
  }

  const int num_workers = std::max(1, options.dist.num_workers);
  dist::DistTaskScheduler scheduler(num_workers);
  graph.last_strategies.clear();

  PipelineMetrics pipeline_metrics;
  double exec_begin = std::numeric_limits<double>::infinity();
  double exec_end = -std::numeric_limits<double>::infinity();
  // Wire transport: runs re-executed because their owner worker died
  // while (or before) a reducer fetched them.
  std::atomic<std::uint64_t> refetched_runs{0};

  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    PlanNode& node = graph.nodes[id];
    if (node.is_source || !needed[id]) continue;

    const JobOptions resolved = ResolveRoundOptions(node, options);
    // Chunking must mirror what the in-process backend would do on this
    // machine: combined rounds fold per chunk, so per-chunk partials —
    // and therefore reduce inputs — depend on the chunk count. Keying it
    // to the resolved thread count (not the worker count) keeps outputs
    // byte-identical to the in-process run and invariant across worker
    // counts.
    const std::size_t threads = resolved.ResolvedThreads();
    const std::size_t n = node.input_size(graph);
    MRCOST_CHECK(n != kUnknownSize);
    const std::size_t num_chunks = NumChunks(n, threads);
    std::uint64_t pairs_hint = 0;
    if (node.hint.replication > 0) {
      pairs_hint = static_cast<std::uint64_t>(node.hint.replication *
                                              static_cast<double>(n));
    }
    const std::size_t num_shards =
        ResolveShardCount(resolved.num_shards, threads, pairs_hint);
    const std::size_t merge_fan_in = resolved.shuffle.merge_fan_in;

    // Wire transport: each reducer pulls one run per chunk, so its memory
    // bound splits the round's budget across num_chunks sources, in
    // blocks. No budget = a small default window.
    std::uint32_t fetch_credits = 4;
    if (resolved.shuffle.memory_budget_bytes > 0) {
      const std::uint64_t per_source =
          resolved.shuffle.memory_budget_bytes /
          std::max<std::size_t>(1, num_chunks);
      fetch_credits = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
          per_source / storage::kDefaultBlockBytes, 1, 64));
    }

    const std::string round_prefix =
        job_dir.path() + "/r" + std::to_string(id);
    const std::uint64_t round_t0_us = obs::TraceRecorder::NowUs();

    // Chunk files: the coordinator slices the materialized input slot.
    std::vector<std::string> chunk_paths(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      chunk_paths[c] = round_prefix + "-c" + std::to_string(c) + ".chunk";
      const std::size_t lo = c * n / num_chunks;
      const std::size_t hi = (c + 1) * n / num_chunks;
      MRCOST_CHECK_OK(node.dist->write_chunk(graph.slots[node.input], lo,
                                             hi, chunk_paths[c]));
    }

    // Map tasks fan out over chunks, reduce tasks over shards behind a
    // dependency barrier (a reduce needs every chunk's run for its
    // shard). Each task blocks inside the coordinator while a worker
    // executes it; worker death re-issues below this seam.
    std::vector<engine::internal::DistMapOutcome> map_outcomes(num_chunks);
    std::vector<engine::internal::DistReduceOutcome> reduce_outcomes(
        num_shards);
    std::vector<std::string> result_paths(num_shards);
    std::vector<TaskScheduler::TaskId> map_ids(num_chunks);
    std::vector<TaskScheduler::TaskId> reduce_ids(num_shards);
    // Wire transport: which worker holds each chunk's runs (its endpoint
    // is where reducers fetch them) — repaired under remap_mu when an
    // owner dies mid-shuffle. remap_epoch makes repair run ids distinct
    // from every earlier attempt's.
    std::vector<int> chunk_owner(num_chunks, -1);
    std::mutex remap_mu;
    int remap_epoch = 0;

    for (std::size_t c = 0; c < num_chunks; ++c) {
      map_ids[c] = scheduler.AddTask(
          StageKind::kMap, static_cast<std::uint32_t>(id), {},
          [&, c, id, num_shards] {
            int winner = -1;
            auto outcome = coordinator.RunMap(
                static_cast<std::uint32_t>(id),
                [&, c](int attempt) {
                  engine::internal::DistMapSpec spec;
                  spec.chunk_path = chunk_paths[c];
                  spec.chunk_index = static_cast<std::uint32_t>(c);
                  spec.num_shards = static_cast<std::uint32_t>(num_shards);
                  spec.run_prefix = round_prefix + "-c" +
                                    std::to_string(c) + "-a" +
                                    std::to_string(attempt);
                  return spec;
                },
                static_cast<std::uint32_t>(c),
                static_cast<std::uint32_t>(num_shards), &winner);
            MRCOST_CHECK_OK(outcome.status());
            map_outcomes[c] = std::move(*outcome);
            chunk_owner[c] = winner;
          });
    }
    for (std::size_t s = 0; s < num_shards; ++s) {
      reduce_ids[s] = scheduler.AddTask(
          StageKind::kReduce, static_cast<std::uint32_t>(id), map_ids,
          [&, s, id, merge_fan_in, fetch_credits, num_chunks] {
            // Runs after every map outcome for this round landed. The
            // retry loop only spins for the wire transport: a fetch that
            // lost its source worker fails kUnavailable, we re-execute
            // the dead owners' maps, and try again with fresh endpoints.
            for (int tries = 1;; ++tries) {
              std::vector<std::string> run_paths;
              std::vector<std::string> run_endpoints;
              {
                std::lock_guard<std::mutex> lock(remap_mu);
                for (std::size_t c = 0; c < num_chunks; ++c) {
                  for (const auto& run : map_outcomes[c].runs) {
                    if (run.shard != s) continue;
                    run_paths.push_back(run.path);
                    if (wire) {
                      run_endpoints.push_back(dist::DataEndpointPath(
                          job_dir.path(), chunk_owner[c]));
                    }
                  }
                }
              }
              auto outcome = coordinator.RunReduce(
                  static_cast<std::uint32_t>(id), [&, s](int attempt) {
                    engine::internal::DistReduceSpec spec;
                    spec.shard = static_cast<std::uint32_t>(s);
                    spec.run_paths = run_paths;
                    spec.run_endpoints = run_endpoints;
                    spec.fetch_credits = wire ? fetch_credits : 0;
                    spec.result_path = round_prefix + "-s" +
                                       std::to_string(s) + "-t" +
                                       std::to_string(tries) + "-a" +
                                       std::to_string(attempt) + ".res";
                    spec.scratch_dir = job_dir.path();
                    if (merge_fan_in > 0) spec.merge_fan_in = merge_fan_in;
                    // One attempt is in flight at a time and only the
                    // latest can commit (dead workers' sockets are cut),
                    // so the last spec built is the winning attempt's.
                    result_paths[s] = spec.result_path;
                    return spec;
                  });
              if (outcome.ok()) {
                reduce_outcomes[s] = std::move(*outcome);
                return;
              }
              const bool retryable =
                  wire && outcome.status().code() ==
                              common::StatusCode::kUnavailable;
              if (!retryable || tries >= 120) {
                MRCOST_CHECK_OK(outcome.status());
              }
              // Repair: re-execute the maps whose owner worker is gone,
              // publishing their runs on a live worker. Serialized so
              // concurrent reducers repair each chunk once.
              bool remapped = false;
              {
                std::lock_guard<std::mutex> lock(remap_mu);
                int epoch = 0;
                for (std::size_t c = 0; c < num_chunks; ++c) {
                  if (coordinator.worker_live(chunk_owner[c])) continue;
                  if (!remapped) {
                    remapped = true;
                    epoch = ++remap_epoch;
                  }
                  int winner = -1;
                  auto redo = coordinator.RunMap(
                      static_cast<std::uint32_t>(id),
                      [&, c, epoch](int attempt) {
                        engine::internal::DistMapSpec spec;
                        spec.chunk_path = chunk_paths[c];
                        spec.chunk_index = static_cast<std::uint32_t>(c);
                        spec.num_shards =
                            static_cast<std::uint32_t>(num_shards);
                        spec.run_prefix = round_prefix + "-c" +
                                          std::to_string(c) + "-r" +
                                          std::to_string(epoch) + "-a" +
                                          std::to_string(attempt);
                        return spec;
                      },
                      static_cast<std::uint32_t>(c),
                      static_cast<std::uint32_t>(num_shards), &winner);
                  MRCOST_CHECK_OK(redo.status());
                  refetched_runs.fetch_add(redo->runs.size());
                  map_outcomes[c] = std::move(*redo);
                  chunk_owner[c] = winner;
                }
              }
              if (!remapped) {
                // The death may not be detected yet (the fetch saw the
                // socket drop before the coordinator did) — give the
                // receiver/monitor a beat, then rebuild and retry.
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
              }
            }
          });
    }
    scheduler.Wait();

    JobMetrics metrics;
    metrics.num_inputs = n;
    auto collected = node.dist->collect(result_paths, metrics);
    MRCOST_CHECK_OK(collected.status());
    graph.slots[id] = std::move(*collected);

    std::uint64_t encode_raw = 0;
    std::uint64_t encode_encoded = 0;
    for (const auto& outcome : map_outcomes) {
      metrics.pairs_shuffled += outcome.pairs;
      metrics.pairs_before_combine += outcome.raw_pairs;
      metrics.bytes_shuffled += outcome.bytes;
      metrics.blocks_emitted += outcome.blocks_emitted;
      metrics.bytes_copied += outcome.bytes_copied;
      metrics.spill_bytes_written += outcome.spill_bytes_written;
      metrics.spill_runs += outcome.runs.size();
      encode_raw += outcome.encode_raw_bytes;
      encode_encoded += outcome.encode_encoded_bytes;
    }
    if (encode_encoded > 0) {
      metrics.compression_ratio = static_cast<double>(encode_raw) /
                                  static_cast<double>(encode_encoded);
    }
    for (const auto& outcome : reduce_outcomes) {
      metrics.merge_passes += outcome.merge_passes;
      metrics.spill_bytes_written += outcome.spill_bytes_written;
    }

    // Stage windows from the scheduler spans (each span wraps the remote
    // execution it waited on).
    double map_begin = std::numeric_limits<double>::infinity();
    double map_end = -map_begin;
    for (auto task_id : map_ids) {
      const TaskSpan span = scheduler.SpanOf(task_id);
      map_begin = std::min(map_begin, span.begin_ms);
      map_end = std::max(map_end, span.end_ms);
    }
    double reduce_begin = std::numeric_limits<double>::infinity();
    double reduce_end = -reduce_begin;
    for (auto task_id : reduce_ids) {
      const TaskSpan span = scheduler.SpanOf(task_id);
      reduce_begin = std::min(reduce_begin, span.begin_ms);
      reduce_end = std::max(reduce_end, span.end_ms);
    }
    metrics.map_ms = map_end - map_begin;
    metrics.reduce_ms = reduce_end - reduce_begin;
    metrics.span_ms = reduce_end - map_begin;
    exec_begin = std::min(exec_begin, map_begin);
    exec_end = std::max(exec_end, reduce_end);

    if (trace_on) {
      obs::TraceEvent event;
      event.name = "Round";
      event.category = "round";
      event.round = static_cast<std::uint32_t>(id);
      event.t_start_us = round_t0_us;
      event.t_end_us = obs::TraceRecorder::NowUs();
      event.args.push_back(obs::Arg("label", node.label));
      event.args.push_back(obs::Arg("backend", "multi_process"));
      event.args.push_back(
          obs::Arg("chunks", static_cast<std::uint64_t>(num_chunks)));
      event.args.push_back(
          obs::Arg("shards", static_cast<std::uint64_t>(num_shards)));
      event.args.push_back(obs::Arg("pairs", metrics.pairs_shuffled));
      event.args.push_back(obs::Arg("reducers", metrics.num_reducers));
      event.args.push_back(obs::Arg("realized_q", metrics.max_reducer_input));
      event.args.push_back(obs::Arg("realized_r", metrics.replication_rate()));
      obs::TraceRecorder::Global().Append(std::move(event));
    }
    if (metrics_on) metrics.PublishTo(obs::Registry::Global());

    graph.last_strategies.push_back(ShuffleStrategy::kExternal);
    pipeline_metrics.Add(metrics);
  }

  // Stop before the capture scope closes: the workers' Bye payloads merge
  // into the global registry/trace here and must make the files.
  coordinator.Stop();
  if (metrics_on) {
    const auto stats = coordinator.stats();
    obs::Registry::Global().AddCounter("dist.workers",
                                       static_cast<std::uint64_t>(num_workers));
    obs::Registry::Global().AddCounter("dist.reissued_tasks",
                                       stats.reissued_tasks);
    obs::Registry::Global().AddCounter("dist.workers_died",
                                       stats.workers_died);
    obs::Registry::Global().AddCounter("dist.duplicate_commits",
                                       stats.duplicate_commits);
    obs::Registry::Global().AddCounter("dist.refetched_runs",
                                       refetched_runs.load());
  }

  if (exec_end > exec_begin) {
    pipeline_metrics.exec_span_ms = exec_end - exec_begin;
  }
  return pipeline_metrics;
}

}  // namespace mrcost::engine::internal
