// Two-round dataflow for matrix multiplication — the Section 6.3 result
// that a two-phase map-reduce pipeline always communicates less than the
// best one-phase algorithm at the same reducer size.
//
// A 96x96 dense product is computed three ways under a per-reducer input
// budget q: serially (ground truth), with one-phase square tiling
// (Sec 6.2), and with the two-phase 2:1-tile pipeline (Sec 6.3). The
// program prints the measured communication of each and the paper's
// closed forms.
//
// Run: ./build/examples/matrix_pipeline

#include <cstdint>
#include <iostream>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"
#include "src/matmul/problem.h"

int main() {
  using namespace mrcost;  // NOLINT: example brevity

  const int n = 96;
  common::SplitMix64 rng(31);
  matmul::Matrix a(n, n), b(n, n);
  a.FillRandom(rng);
  b.FillRandom(rng);
  const matmul::Matrix truth = matmul::SerialMultiply(a, b);

  // Reducer budget: q = 1152 inputs. One-phase needs q = 2sn -> s = 6;
  // two-phase takes s = sqrt(q), t = sqrt(q)/2 (2:1 tiles).
  const double q = 1152;
  const int one_phase_tile = static_cast<int>(q / (2 * n));  // s = 6
  const auto [s2, t2] = matmul::OptimalTwoPhaseTiles(n, q);
  std::cout << "n = " << n << ", reducer budget q = " << q
            << "\n  one-phase tile s = " << one_phase_tile
            << "; two-phase tiles (s, t) = (" << s2 << ", " << t2 << ")\n\n";

  auto one = matmul::MultiplyOnePhase(a, b, one_phase_tile);
  auto two = matmul::MultiplyTwoPhase(a, b, s2, t2);
  if (!one.ok() || !two.ok()) {
    std::cerr << one.status() << " / " << two.status() << "\n";
    return 1;
  }

  common::Table t({"algorithm", "rounds", "pairs moved", "paper closed form",
                   "max reducer input", "max |error| vs serial"});
  t.AddRow()
      .Add("one-phase (square tiles)")
      .Add(1)
      .Add(one->metrics.pairs_shuffled)
      .Add(matmul::OnePhaseCommunication(n, q))
      .Add(one->metrics.max_reducer_input)
      .Add(one->product.MaxAbsDiff(truth));
  t.AddRow()
      .Add("two-phase (2:1 tiles)")
      .Add(2)
      .Add(two->metrics.total_pairs())
      .Add(matmul::TwoPhaseCommunication(
          n, 2.0 * s2 * t2))
      .Add(two->metrics.max_reducer_input())
      .Add(two->product.MaxAbsDiff(truth));
  t.Print(std::cout, "Dense 96x96 product under a reducer budget");

  const double saving =
      static_cast<double>(one->metrics.pairs_shuffled) /
      static_cast<double>(two->metrics.total_pairs());
  std::cout << "\nTwo-phase moves " << saving
            << "x fewer bytes-on-the-wire at the same reducer budget — the "
               "Section 6.3\nresult (crossover only at q = n^2 = " << n * n
            << ").\n";
  return 0;
}
