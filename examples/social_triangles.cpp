// Community analysis on a social graph — the Section 4 motivation for
// triangle finding ("analysis of communities in social networks ...
// applied to large but sparse graphs").
//
// We build a preferential-attachment network (heavy-tailed degrees, like
// real social graphs), pick the bucket count k from a per-reducer memory
// budget using the paper's sparse rescaling (Section 4.2), run the MR
// partition algorithm, and report triangle statistics plus the global
// clustering coefficient.
//
// Run: ./build/examples/social_triangles

#include <cmath>
#include <cstdint>
#include <iostream>

#include "src/common/table.h"
#include "src/graph/generators.h"
#include "src/graph/triangle.h"
#include "src/graph/two_path.h"

int main() {
  using namespace mrcost;  // NOLINT: example brevity

  const graph::NodeId n = 3000;
  const graph::Graph g =
      graph::PreferentialAttachmentGraph(n, /*attach=*/5, /*seed=*/2026);
  const std::uint64_t m = g.num_edges();
  std::cout << "Social graph: " << n << " users, " << m << " edges\n";

  // Memory budget: each reducer may hold at most q_budget edges. The
  // partition algorithm sends ~6m/k^2 edges to the largest reducer (3
  // bucket-pair classes of ~m/C(k,2) edges each), so pick the smallest k
  // that fits — maximal parallelism within memory, per Section 1.1.
  const double q_budget = 6000;
  int k = 2;
  while (6.0 * static_cast<double>(m) / (static_cast<double>(k) * k) >
         q_budget) {
    ++k;
  }
  std::cout << "Memory budget q <= " << q_budget << " edges -> k = " << k
            << " buckets (expected max load ~" << 6.0 * m / (k * k)
            << ")\n\n";

  const auto result = graph::MRTriangles(g, k, /*seed=*/99);
  const std::uint64_t triangles = result.triangles.size();
  const std::uint64_t wedges = graph::SerialTwoPathCount(g);
  common::Table t({"metric", "value"});
  t.AddRow().Add("triangles").Add(triangles);
  t.AddRow().Add("wedges (2-paths)").Add(wedges);
  t.AddRow().Add("global clustering coefficient").Add(
      wedges == 0 ? 0.0
                  : 3.0 * static_cast<double>(triangles) /
                        static_cast<double>(wedges));
  t.AddRow().Add("replication rate r (= k)").Add(
      result.metrics.replication_rate());
  t.AddRow().Add("edges shuffled").Add(result.metrics.pairs_shuffled);
  t.AddRow().Add("max reducer load").Add(result.metrics.max_reducer_input);
  t.AddRow().Add("sparse lower bound sqrt(m/q) at measured q").Add(
      graph::SparseTriangleLowerBound(
          m, static_cast<double>(result.metrics.max_reducer_input)));
  t.Print(std::cout, "Triangle run");

  // Sanity: the MR result matches the serial baseline.
  if (triangles != graph::SerialTriangleCount(g)) {
    std::cerr << "ERROR: MR and serial counts disagree\n";
    return 1;
  }
  std::cout << "\nVerified against the serial baseline. The measured r sits "
               "a small constant\nabove sqrt(m/q) — the Section 4.2 bound "
               "is tight up to constants.\n";
  return 0;
}
