// Near-duplicate detection over document fingerprints — the fuzzy-join
// workload that motivates the paper's Hamming-distance analysis (the
// Section 1 reference to fuzzy joins [3]).
//
// We synthesize 24-bit SimHash-style fingerprints with planted
// near-duplicate clusters, then find all pairs within Hamming distance 2
// two ways: the distance-d Splitting algorithm (Sec 3.6) and Ball-2
// (Sec 3.6, from [3]). Both return identical pairs; their communication
// profiles differ exactly as the schema analysis predicts, so the right
// choice depends on the cluster's q limit — the paper's core tradeoff.
//
// Run: ./build/examples/similarity_join

#include <cstdint>
#include <iostream>
#include <vector>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/hamming/similarity_join.h"

namespace {

/// Synthesizes `clusters` groups of near-duplicate fingerprints plus
/// uniform background noise. Returns distinct fingerprints.
std::vector<mrcost::hamming::BitString> SynthesizeFingerprints(
    int b, int clusters, int dupes_per_cluster, int background,
    std::uint64_t seed) {
  mrcost::common::SplitMix64 rng(seed);
  std::vector<mrcost::hamming::BitString> out;
  for (int c = 0; c < clusters; ++c) {
    const std::uint64_t base = rng.UniformBelow(std::uint64_t{1} << b);
    out.push_back(base);
    for (int d = 1; d < dupes_per_cluster; ++d) {
      // Flip one or two random bits: a near duplicate.
      std::uint64_t fp = base ^ (std::uint64_t{1} << rng.UniformBelow(b));
      if (rng.Bernoulli(0.5)) fp ^= std::uint64_t{1} << rng.UniformBelow(b);
      out.push_back(fp);
    }
  }
  for (int i = 0; i < background; ++i) {
    out.push_back(rng.UniformBelow(std::uint64_t{1} << b));
  }
  // Deduplicate (the join expects distinct inputs).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  mrcost::common::Shuffle(out, rng);
  return out;
}

}  // namespace

int main() {
  using namespace mrcost;  // NOLINT: example brevity

  const int b = 24;
  const auto fingerprints =
      SynthesizeFingerprints(b, /*clusters=*/400, /*dupes_per_cluster=*/4,
                             /*background=*/30000, /*seed=*/7);
  std::cout << "Corpus: " << fingerprints.size()
            << " distinct 24-bit fingerprints, ~400 planted clusters\n\n";

  common::Table t({"algorithm", "pairs found", "replication r",
                   "pairs shuffled", "max reducer input q",
                   "reducers used"});
  auto report = [&t](const std::string& name,
                     const hamming::SimilarityJoinResult& result) {
    t.AddRow()
        .Add(name)
        .Add(result.pairs.size())
        .Add(result.metrics.replication_rate())
        .Add(result.metrics.pairs_shuffled)
        .Add(result.metrics.max_reducer_input)
        .Add(result.metrics.num_reducers);
  };

  // Splitting with k segments: r = C(k,2) for d=2; bigger k = more
  // replication but smaller reducers (the tradeoff curve).
  std::vector<std::vector<std::pair<hamming::BitString,
                                    hamming::BitString>>> all_answers;
  for (int k : {3, 4, 6}) {
    auto result = hamming::SplittingSimilarityJoin(fingerprints, b, k, 2);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    report("splitting k=" + std::to_string(k), *result);
    all_answers.push_back(result->pairs);
  }
  // Ball-2: r = b+1 = 25, tiny reducers.
  auto ball = hamming::BallSimilarityJoin(fingerprints, b, 2);
  report("ball-2", *ball);
  all_answers.push_back(ball->pairs);

  for (std::size_t i = 1; i < all_answers.size(); ++i) {
    if (all_answers[i] != all_answers[0]) {
      std::cerr << "ERROR: algorithms disagree!\n";
      return 1;
    }
  }
  t.Print(std::cout,
          "All algorithms agree on the pair set; pick by your q budget");
  std::cout << "\nReading the table: small k keeps communication low but "
               "needs big reducers;\nball-2 runs with tiny reducers at the "
               "price of r = b+1 — exactly the\nreplication/parallelism "
               "tradeoff the paper formalizes.\n";
  return 0;
}
