// Quickstart: the full mrcost workflow on one problem.
//
//   1. Model a problem (Hamming-distance-1 on 12-bit strings).
//   2. Get a lower bound on replication rate from the Section 2.4 recipe.
//   3. Build a mapping schema (the Splitting algorithm) and validate it.
//   4. Build the join as a lazy Plan, Estimate its (q, r) against the
//      bound BEFORE running, Explain the physical plan, then Execute and
//      compare the realized communication.
//   5. Pick the cost-optimal reducer size for a made-up cluster price.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
//        ./build/examples/quickstart --trace_out=trace.json
//            --metrics_out=metrics.json   # Perfetto trace + registry dump
//        ./build/examples/quickstart --backend=multi_process --workers=4
//            # re-runs the join on worker processes and checks the
//            # outputs byte-identical; --kill_worker=0 SIGKILLs a worker
//            # mid-round to exercise task re-issue

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/cost_model.h"
#include "src/core/lower_bound.h"
#include "src/core/schema_stats.h"
#include "src/core/schema_validator.h"
#include "src/dist/registry.h"
#include "src/engine/plan.h"
#include "src/hamming/bounds.h"
#include "src/hamming/problem.h"
#include "src/hamming/schemas.h"
#include "src/hamming/similarity_join.h"
#include "src/obs/export.h"

int main(int argc, char** argv) {
  using namespace mrcost;  // NOLINT: example brevity
  const obs::CaptureFlags capture = obs::ParseCaptureFlags(argc, argv);
  std::string backend = "in_process";
  std::string transport = "spill";
  std::size_t workers = 2;
  int kill_worker = -1;
  int kill_fetch = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--backend=", 0) == 0) {
      backend = arg.substr(10);
    } else if (arg.rfind("--transport=", 0) == 0) {
      transport = arg.substr(12);  // spill | wire
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--kill_worker=", 0) == 0) {
      kill_worker = std::atoi(arg.c_str() + 14);
    } else if (arg.rfind("--kill_fetch=", 0) == 0) {
      kill_fetch = std::atoi(arg.c_str() + 13);
    }
  }

  // 1. The problem: all 2^12 bit strings; outputs are pairs at distance 1.
  const int b = 12;
  const hamming::HammingProblem problem(b, /*d=*/1);
  std::cout << "Problem: " << problem.name() << "\n"
            << "  |I| = " << problem.num_inputs()
            << ", |O| = " << problem.num_outputs() << "\n\n";

  // 2. Lower bound: no schema with reducer size q can replicate less than
  //    b/log2(q) (Theorem 3.2).
  const core::Recipe recipe = hamming::Hamming1Recipe(b);
  for (double q : {2.0, 16.0, 64.0, 4096.0}) {
    std::cout << "  q = " << q << "  ->  r >= "
              << core::ClampedReplicationLowerBound(recipe, q) << "\n";
  }

  // 3. A matching algorithm: Splitting with c = 3 segments (q = 2^4 = 16).
  auto schema = hamming::SplittingSchema::Make(b, /*c=*/3);
  if (!schema.ok()) {
    std::cerr << schema.status() << "\n";
    return 1;
  }
  const auto valid =
      core::ValidateSchema(problem, *schema, schema->reducer_size());
  std::cout << "\nSchema " << schema->name() << ": "
            << (valid.ok() ? "valid (covers every output, q respected)"
                           : valid.ToString())
            << "\n";
  const auto stats =
      core::ComputeSchemaStats(*schema, problem.num_inputs());
  std::cout << "  measured: " << stats.ToString() << "\n"
            << "  bound at q=" << stats.max_reducer_load << ": r >= "
            << hamming::Hamming1LowerBound(
                   b, static_cast<double>(stats.max_reducer_load))
            << "  -> the algorithm is exactly optimal\n\n";

  // 4. Build the join as a lazy plan: nothing runs yet, but the cost is
  //    already knowable — the paper's point, as an API.
  auto plan = hamming::BuildSplittingSimilarityJoinPlan(
      hamming::AllStrings(b), b, /*k=*/3, /*d=*/1);
  if (!plan.ok()) {
    std::cerr << plan.status() << "\n";
    return 1;
  }

  //    Estimate: predicted q, r, and the bound ratio, before any data
  //    moves (the splitting schema declares its analytic geometry).
  std::cout << "Estimate (before execution):\n  "
            << plan->plan.Estimate(recipe).ToString() << "\n\n";

  //    Explain: the physical plan Execute would run.
  engine::ExecutionOptions exec_options;
  exec_options.trace_out = capture.trace_out;
  exec_options.metrics_out = capture.metrics_out;
  exec_options.recipe = &recipe;  // annotates rounds with the bound ratio
  std::cout << "Explain:\n" << plan->plan.Explain(exec_options) << "\n\n";

  //    Execute: lowers onto the eager engine, byte-identical to it.
  auto run = plan->pairs.Execute(exec_options);
  std::cout << "Engine run: found " << run.outputs.size()
            << " distance-1 pairs (expected " << problem.num_outputs()
            << ")\n  " << run.metrics.rounds[0].ToString() << "\n\n";

  //    Optional: the same join on the multi-process backend. The
  //    "quickstart" dist recipe rebuilds this exact plan (b=12, k=3,
  //    d=1) in each worker process, so the coordinator can ship (recipe,
  //    args) instead of closures; the spill-file shuffle must reproduce
  //    the in-process run byte for byte — including when --kill_worker
  //    SIGKILLs a worker mid-round and its tasks are re-issued.
  if (backend == "multi_process") {
    auto dist_plan = dist::PlanRegistry::Global().Build("quickstart", "");
    MRCOST_CHECK_OK(dist_plan.status());
    engine::ExecutionOptions dist_options;
    dist_options.backend = engine::ExecutionBackend::kMultiProcess;
    // Re-point the capture at the distributed run: its trace (worker
    // lanes, FetchRun spans) and registry supersede the in-process one
    // written above.
    dist_options.trace_out = capture.trace_out;
    dist_options.metrics_out = capture.metrics_out;
    dist_options.dist.num_workers = workers;
    dist_options.dist.spill_dir = capture.spill_dir;
    dist_options.dist.keep_spills = capture.keep_spills;
    dist_options.dist.kill_worker_index = kill_worker;
    dist_options.dist.kill_after_fetches = kill_fetch;
    if (transport == "wire") {
      dist_options.dist.shuffle_transport =
          engine::ShuffleTransport::kWireStream;
    }
    dist_plan->Execute(dist_options);
    const auto& slots = dist_plan->graph()->slots;
    const auto* dist_pairs =
        static_cast<const std::vector<std::pair<hamming::BitString,
                                                hamming::BitString>>*>(
            slots.back().get());
    MRCOST_CHECK(dist_pairs != nullptr);
    MRCOST_CHECK(*dist_pairs == run.outputs);
    std::cout << "Multi-process run (" << workers << " workers, "
              << transport << " shuffle"
              << (kill_worker >= 0 ? ", one SIGKILLed mid-round" : "")
              << "): " << dist_pairs->size()
              << " pairs, byte-identical to the in-process engine\n\n";
  }

  // 5. Cost model (Example 1.1): suppose communication costs 50 units per
  //    replicated input and reducers do quadratic work at 0.002/pair.
  const core::CostModel model{/*a=*/50.0, /*b=*/0.0, /*c=*/0.002};
  std::vector<core::TradeoffPoint> curve;
  for (int c = 1; c <= b; ++c) {
    if (b % c != 0) continue;
    curve.push_back({std::ldexp(1.0, b / c), static_cast<double>(c),
                     "splitting c=" + std::to_string(c)});
  }
  const auto best = core::PickCheapest(curve, model);
  std::cout << "Cheapest configuration for this cluster: " << best.label
            << " (q=" << best.q << ", r=" << best.r
            << ", cost=" << model.Cost(best.r, best.q) << ")\n";
  return 0;
}
