// Skewed cluster walkthrough: what the paper's q/r tradeoff feels like
// on a real (simulated) cluster once keys stop being uniform.
//
//   1. Run a word-count-shaped job with uniform keys on a simulated
//      16-worker cluster: load imbalance ~1, makespan ~ ideal.
//   2. Re-run with Zipf-skewed keys: same r, same number of reducers —
//      but one worker owns the hot key and the makespan with it.
//   3. Provision a reducer capacity q for the uniform case and watch the
//      skewed run report capacity violations instead of silently
//      overfilling.
//   4. Add stragglers (heterogeneous machine speeds) and see makespan
//      stretch even under perfectly uniform keys.
//
// Build: cmake -B build && cmake --build build
// Run:   ./build/example_skewed_cluster [--trace_out=trace.json]

#include <cstdint>
#include <iostream>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/engine/job.h"
#include "src/engine/simulator.h"
#include "src/obs/export.h"

namespace {

using namespace mrcost;  // NOLINT: example brevity

/// `n` inputs, keys Zipf(exponent) over `num_keys`; exponent 0 = uniform.
engine::JobResult<std::pair<std::uint64_t, std::int64_t>> CountJob(
    double exponent, const engine::JobOptions& options) {
  common::SplitMix64 rng(1);
  const common::ZipfDistribution zipf(2048, exponent);
  std::vector<std::uint64_t> inputs(100000);
  for (auto& x : inputs) x = zipf.Sample(rng);
  auto map_fn = [](const std::uint64_t& x,
                   engine::Emitter<std::uint64_t, int>& emitter) {
    emitter.Emit(x, 1);
  };
  auto reduce_fn =
      [](const std::uint64_t& key, const std::vector<int>& values,
         std::vector<std::pair<std::uint64_t, std::int64_t>>& out) {
        out.emplace_back(key, static_cast<std::int64_t>(values.size()));
      };
  return engine::RunMapReduce<std::uint64_t, std::uint64_t, int,
                              std::pair<std::uint64_t, std::int64_t>>(
      inputs, map_fn, reduce_fn, options);
}

void Report(const char* label, const engine::JobMetrics& m) {
  std::cout << label << "\n  " << m.ToString() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Optional capture: every eager round below records into one trace, the
  // simulated workers appearing as virtual-time lanes on their own pid.
  const obs::CaptureFlags flags = obs::ParseCaptureFlags(argc, argv);
  obs::ScopedCapture trace_scope(flags.trace_out, flags.metrics_out);

  // 1. Uniform keys on a 16-worker simulated cluster. The simulation never
  //    changes reduce outputs — it only measures what the placement costs.
  engine::JobOptions options;
  options.simulation.num_workers = 16;
  const auto uniform = CountJob(0.0, options);
  Report("1. Uniform keys: imbalance ~1, makespan ~ total/16",
         uniform.metrics);

  // 2. Zipf(1.2) keys: replication rate r is *unchanged* (still one pair
  //    per input — skew is invisible to the paper's communication cost),
  //    but the worker owning key rank 0 now defines the round.
  const auto skewed = CountJob(1.2, options);
  Report("\n2. Zipf(1.2) keys: same r, same reducers — skewed makespan",
         skewed.metrics);

  // 3. Capacity: provision q = 4x the uniform mean group size. The
  //    uniform run fits; the skewed run's hot reducers violate q, and the
  //    simulator counts them (the schema's promise q was broken).
  options.simulation.reducer_capacity_q =
      4.0 * 100000.0 / 2048.0;  // ~195 pairs
  Report("\n3a. Uniform under provisioned q (no violations)",
         CountJob(0.0, options).metrics);
  Report("3b. Zipf(1.2) under the same q (violations reported)",
         CountJob(1.2, options).metrics);
  options.simulation.reducer_capacity_q = 0;

  // 4. Stragglers: uniform keys, but 4 of 16 workers run 4x slower.
  //    Placement cannot see machine speed, so imbalance stays ~1 while
  //    makespan stretches ~4x — the paper's model (Section 2.2) prices
  //    communication, and this layer prices where it lands.
  options.simulation.straggler_fraction = 0.25;
  options.simulation.straggler_slowdown = 4.0;
  options.simulation.seed = 5;
  Report("\n4. Uniform keys + 25% stragglers at 4x: balanced load, "
         "stretched makespan",
         CountJob(0.0, options).metrics);

  std::cout << "\nTakeaway: r (communication) and q (reducer capacity) "
               "bound what a schema ships;\nmakespan, imbalance, and "
               "capacity violations show what the shipped bytes do to a\n"
               "cluster once keys skew or machines differ.\n";
  return 0;
}
