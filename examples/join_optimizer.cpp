// Star-schema analytics with the Shares optimizer — the Section 5.5
// workload: a large fact table joined with several dimension tables in a
// single map-reduce round.
//
// We synthesize a sales fact table (1M-ish rows scaled down for the demo)
// with three dimensions, let the optimizer allocate hash shares across
// attributes for a given number of reducers p, round them to integers,
// run the HyperCube join on the engine, and compare the measured
// communication against both the optimizer's prediction and the paper's
// closed form (dimension attributes get share 1, fact attributes p^{1/N}).
//
// Run: ./build/examples/join_optimizer

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/join/hypercube.h"
#include "src/join/query.h"
#include "src/join/relation.h"
#include "src/join/serial_join.h"
#include "src/join/shares.h"

int main() {
  using namespace mrcost;        // NOLINT: example brevity
  using namespace mrcost::join;  // NOLINT

  const int kDims = 3;
  const Query query = StarQuery(kDims);
  common::SplitMix64 rng(555);

  // Fact table: 60k rows over three dimension keys; dimensions: 300 rows
  // each mapping key -> attribute. (Sales, customers, products, stores.)
  const Value key_domain = 300;
  Relation fact("F", {"A1", "A2", "A3"});
  for (int i = 0; i < 60000; ++i) {
    fact.Add({static_cast<Value>(rng.UniformBelow(key_domain)),
              static_cast<Value>(rng.UniformBelow(key_domain)),
              static_cast<Value>(rng.UniformBelow(key_domain))});
  }
  std::vector<Relation> dims;
  for (int d = 0; d < kDims; ++d) {
    Relation dim("D" + std::to_string(d + 1),
                 {"A" + std::to_string(d + 1), "B" + std::to_string(d + 1)});
    for (Value key = 0; key < key_domain; ++key) {
      dim.Add({key, static_cast<Value>(rng.UniformBelow(1000))});
    }
    dims.push_back(std::move(dim));
  }
  std::vector<const Relation*> rels{&fact};
  for (const auto& d : dims) rels.push_back(&d);
  std::vector<std::uint64_t> sizes{fact.size()};
  for (const auto& d : dims) sizes.push_back(d.size());

  std::cout << "Star schema: fact " << fact.size() << " rows, " << kDims
            << " dimensions x " << key_domain << " rows\n\n";

  common::Table t({"p", "shares (A1 A2 A3 | B1 B2 B3)", "predicted comm",
                   "closed-form comm", "measured pairs", "measured r",
                   "max q", "join results"});
  for (double p : {8.0, 64.0, 512.0}) {
    auto opt = OptimizeShares(query, sizes, p);
    if (!opt.ok()) {
      std::cerr << opt.status() << "\n";
      return 1;
    }
    const SharesSolution closed = StarShares(query, sizes, p);
    const auto rounded = RoundShares(opt->shares, p);
    auto result = HyperCubeJoin(query, rels, rounded, /*seed=*/8);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      return 1;
    }
    std::string share_str;
    for (std::size_t i = 0; i < rounded.size(); ++i) {
      if (i == static_cast<std::size_t>(kDims)) share_str += "| ";
      share_str += std::to_string(rounded[i]) + " ";
    }
    t.AddRow()
        .Add(p)
        .Add(share_str)
        .Add(PredictedCommunication(
            query, sizes,
            std::vector<double>(rounded.begin(), rounded.end())))
        .Add(closed.communication)
        .Add(result->metrics.pairs_shuffled)
        .Add(result->metrics.replication_rate())
        .Add(result->metrics.max_reducer_input)
        .Add(result->results.size());
  }
  t.Print(std::cout,
          "Shares allocation for the star join (predicted == measured; "
          "dimension B-attributes correctly get share 1)");

  std::cout << "\nAs p grows, only the fact-table attributes receive "
               "shares (p^{1/3} each), and\nthe replication of the tiny "
               "dimension tables grows as p^{2/3} while the huge\nfact "
               "table is never replicated — the Section 5.5.2 analysis.\n";
  return 0;
}
