// Two-round SQL: a join followed by an aggregation — the workload the
// paper's Section 7.1 names as the natural next target for multi-round
// analysis ("SQL statements that require two phases of map-reduce, e.g.,
// joins followed by aggregations").
//
//   SELECT region, SUM(amount)
//   FROM   orders JOIN customers ON orders.cust = customers.cust
//   GROUP  BY region;
//
// Round 1 is a HyperCube join; round 2 groups and sums. The program
// contrasts the naive pipeline (every joined row crosses the second
// shuffle) with per-reducer pre-aggregation — the same associative
// partial-sum idea that makes two-phase matrix multiplication win in
// Section 6.3 — and verifies both against a serial baseline.
//
// Run: ./build/examples/sql_pipeline [--trace_out=trace.json]

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "src/common/random.h"
#include "src/core/lower_bound.h"
#include "src/common/table.h"
#include "src/join/query.h"
#include "src/join/relation.h"
#include "src/join/two_round.h"
#include "src/obs/export.h"

int main(int argc, char** argv) {
  using namespace mrcost;        // NOLINT: example brevity
  using namespace mrcost::join;  // NOLINT
  const obs::CaptureFlags capture = obs::ParseCaptureFlags(argc, argv);

  // Schema: orders(cust, amount) JOIN customers(cust, region).
  // As a chain query: R1(A0=amount', A1=cust) |x| R2(A1=cust, A2=region);
  // we keep amounts in A0 and group by region = A2.
  const Query query = ChainQuery(2);
  common::SplitMix64 rng(99);
  Relation orders("R1", {"A0", "A1"});
  const Value customers_count = 500;
  for (int i = 0; i < 40000; ++i) {
    orders.Add({static_cast<Value>(rng.UniformBelow(100)),  // amount
                static_cast<Value>(rng.UniformBelow(customers_count))});
  }
  Relation customers("R2", {"A1", "A2"});
  for (Value cust = 0; cust < customers_count; ++cust) {
    customers.Add({cust, static_cast<Value>(rng.UniformBelow(8))});  // region
  }
  const std::vector<const Relation*> rels{&orders, &customers};
  const int group_attr = 2;  // region
  const int sum_attr = 0;    // amount

  const auto serial = SerialJoinAggregate(query, rels, group_attr, sum_attr);
  std::cout << "orders: " << orders.size()
            << " rows, customers: " << customers.size() << " rows, "
            << serial.size() << " regions\n\n";

  const std::vector<int> shares{1, 8, 1};  // hash by customer: 8 reducers

  // The two-round pipeline is a lazy plan: estimate and explain the naive
  // variant before anything runs — round 1's Shares geometry is declared,
  // round 2's input is propagated until execution materializes it.
  {
    auto plan = BuildHyperCubeJoinAggregatePlan(
        query, rels, shares, group_attr, sum_attr,
        /*pre_aggregate=*/false, /*seed=*/4);
    if (!plan.ok()) {
      std::cerr << plan.status() << "\n";
      return 1;
    }
    mrcost::core::Recipe recipe;
    recipe.problem_name = "join+aggregate";
    recipe.g = [](double q) { return q * q; };
    recipe.num_inputs = static_cast<double>(orders.size()) +
                        static_cast<double>(customers.size());
    recipe.num_outputs = 8;  // regions
    std::cout << "Estimate (before execution):\n  "
              << plan->plan.Estimate(recipe).ToString() << "\n\n"
              << "Explain:\n"
              << plan->plan.Explain({}) << "\n\n";
  }

  // One capture scope over both pipeline variants: a single trace file
  // shows the naive and pre-aggregated rounds side by side.
  obs::ScopedCapture trace_scope(capture.trace_out, capture.metrics_out);

  common::Table t({"pipeline", "round1 pairs", "round2 pairs",
                   "total pairs", "round2 max q", "correct"});
  for (bool pre_aggregate : {false, true}) {
    auto plan = BuildHyperCubeJoinAggregatePlan(
        query, rels, shares, group_attr, sum_attr, pre_aggregate,
        /*seed=*/4);
    if (!plan.ok()) {
      std::cerr << plan.status() << "\n";
      return 1;
    }
    auto run = plan->sums.Execute({});
    std::sort(run.outputs.begin(), run.outputs.end());
    t.AddRow()
        .Add(pre_aggregate ? "pre-aggregated (partial sums)" : "naive")
        .Add(run.metrics.rounds[0].pairs_shuffled)
        .Add(run.metrics.rounds[1].pairs_shuffled)
        .Add(run.metrics.total_pairs())
        .Add(run.metrics.rounds[1].max_reducer_input)
        .Add(run.outputs == serial ? "yes" : "NO");
  }
  t.Print(std::cout, "Join + GROUP BY, two map-reduce rounds");
  std::cout
      << "\nPartial sums collapse round-2 traffic from one pair per joined "
         "row to at most\n(#cells x #regions) pairs — the Section 6.3 "
         "associative-aggregation effect, applied\nto the Section 7.1 SQL "
         "workload.\n";
  return 0;
}
