// Regenerates the Section 5.5 analysis (E11, E12): multiway joins.
//   * Fractional edge covers rho* (via the simplex LP) for the query
//     shapes the paper discusses, and the lower-bound exponents they give.
//   * Chain joins: measured HyperCube communication vs the paper's
//     (n/sqrt(q))^{N-1} matching form.
//   * Star joins: the closed-form shares vs the numeric optimizer, and the
//     replication formula r = (f + N d0 p^{(N-1)/N}) / (f + N d0).

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/engine/pipeline.h"
#include "src/join/edge_cover.h"
#include "src/join/hypercube.h"
#include "src/join/query.h"
#include "src/join/relation.h"
#include "src/join/shares.h"

namespace {

using mrcost::common::Table;
using namespace mrcost::join;  // NOLINT: bench-local brevity

void EdgeCoverTable() {
  Table t({"query", "attributes m", "atoms", "rho*", "paper expectation"});
  auto row = [&t](const std::string& name, const Query& q,
                  const std::string& expected) {
    auto cover = SolveFractionalEdgeCover(q);
    t.AddRow()
        .Add(name)
        .Add(q.num_attributes())
        .Add(q.num_atoms())
        .Add(cover.ok() ? cover->rho : -1.0)
        .Add(expected);
  };
  row("chain N=3", ChainQuery(3), "(N+1)/2 = 2");
  row("chain N=5", ChainQuery(5), "(N+1)/2 = 3");
  row("chain N=7", ChainQuery(7), "(N+1)/2 = 4");
  row("cycle s=4", CycleQuery(4), "s/2 = 2");
  row("cycle s=5", CycleQuery(5), "s/2 = 2.5");
  row("clique s=3 (triangle)", CliqueQuery(3), "s/2 = 1.5");
  row("clique s=4", CliqueQuery(4), "s/2 = 2");
  row("star N=3", StarQuery(3), "N = 3");
  row("star N=5", StarQuery(5), "N = 5");
  t.Print(std::cout,
          "Section 5.5.1: fractional edge covers (AGM exponents) via the "
          "simplex LP");
}

Relation MakeRandomRelation(const Query& query, int atom_idx,
                            std::uint64_t size, Value domain,
                            mrcost::common::SplitMix64& rng) {
  const Atom& atom = query.atoms()[atom_idx];
  std::vector<std::string> names;
  for (int a : atom.attributes) names.push_back(query.attribute_names()[a]);
  Relation rel(atom.relation, names);
  for (std::uint64_t i = 0; i < size; ++i) {
    Tuple t(atom.attributes.size());
    for (Value& v : t) v = static_cast<Value>(rng.UniformBelow(domain));
    rel.Add(t);
  }
  return rel;
}

void ChainJoinSweep() {
  Table t({"N", "p", "shares (rounded)", "measured r", "mean q",
           "paper (n/sqrt q)^{N-1}", "results"});
  mrcost::common::SplitMix64 rng(404);
  for (int n_rel : {2, 3, 4}) {
    const Query query = ChainQuery(n_rel);
    const Value domain = 24;
    const std::uint64_t size = 500;
    std::vector<Relation> rels;
    for (int e = 0; e < query.num_atoms(); ++e) {
      rels.push_back(MakeRandomRelation(query, e, size, domain, rng));
    }
    std::vector<const Relation*> ptrs;
    for (const auto& r : rels) ptrs.push_back(&r);
    const std::vector<std::uint64_t> sizes(query.num_atoms(), size);
    for (double p : {8.0, 64.0}) {
      auto shares = OptimizeShares(query, sizes, p);
      const auto rounded = RoundShares(shares->shares, p);
      auto result = HyperCubeJoin(query, ptrs, rounded, /*seed=*/5);
      std::string share_str;
      for (int s : rounded) share_str += std::to_string(s) + " ";
      const double mean_q = result->metrics.reducer_sizes.mean();
      // The paper's chain form uses the dense-domain n; on a random
      // instance we report it at n = domain for shape comparison.
      const double paper =
          ChainJoinReplication(static_cast<double>(domain), n_rel,
                               std::max(mean_q, 1.0));
      t.AddRow()
          .Add(n_rel)
          .Add(p)
          .Add(share_str)
          .Add(result->metrics.replication_rate())
          .Add(mean_q)
          .Add(paper)
          .Add(result->results.size());
    }
  }
  t.Print(std::cout,
          "Section 5.5.2 (chains): HyperCube measured replication; paper "
          "form shown at the same q for shape comparison");
}

void DenseChainJoin() {
  // The model's worst case: every possible tuple present (all n^2 per
  // relation), where the Section 5.5 bound applies verbatim. Measured
  // HyperCube replication vs (n/sqrt(q))^{N-1} at the realized q.
  // Odd N only: the closed form uses rho = (N+1)/2, the odd-chain value.
  // (N = 3 at n = 10 is the largest dense instance whose n^{N+1} result
  // set stays laptop-sized; beyond that the form's constants dominate.)
  // The "recipe" columns run the measured metrics through the engine's
  // CompareToLowerBound against the Section 5.5 recipe at the LP's rho.
  Table t({"N", "n", "p", "measured r", "mean q", "(n/sqrt q)^{N-1}",
           "r/form", "recipe bound @max q", "r/recipe",
           "results (=n^{N+1})"});
  for (int n_rel : {3}) {
    const Query query = ChainQuery(n_rel);
    const Value domain = 10;
    std::vector<Relation> rels;
    for (int e = 0; e < query.num_atoms(); ++e) {
      const Atom& atom = query.atoms()[e];
      Relation rel(atom.relation,
                   {query.attribute_names()[atom.attributes[0]],
                    query.attribute_names()[atom.attributes[1]]});
      for (Value a = 0; a < domain; ++a) {
        for (Value b = 0; b < domain; ++b) rel.Add({a, b});
      }
      rels.push_back(std::move(rel));
    }
    std::vector<const Relation*> ptrs;
    for (const auto& r : rels) ptrs.push_back(&r);
    const std::vector<std::uint64_t> sizes(
        query.num_atoms(), static_cast<std::uint64_t>(domain) * domain);
    auto cover = SolveFractionalEdgeCover(query);
    const double rho = cover.ok() ? cover->rho : (n_rel + 1) / 2.0;
    const auto recipe = MultiwayJoinRecipe(static_cast<double>(domain),
                                           query.num_attributes(), rho);
    for (double p : {16.0, 64.0}) {
      auto shares = OptimizeShares(query, sizes, p);
      const auto rounded = RoundShares(shares->shares, p);
      auto result = HyperCubeJoin(query, ptrs, rounded, /*seed=*/2);
      const double mean_q = result->metrics.reducer_sizes.mean();
      const double form = ChainJoinReplication(static_cast<double>(domain),
                                               n_rel, mean_q);
      const auto report =
          mrcost::engine::CompareToLowerBound(result->metrics, recipe);
      t.AddRow()
          .Add(n_rel)
          .Add(static_cast<int>(domain))
          .Add(p)
          .Add(result->metrics.replication_rate())
          .Add(mean_q)
          .Add(form)
          .Add(result->metrics.replication_rate() / std::max(form, 1e-12))
          .Add(report.lower_bound_r)
          .Add(report.optimality_ratio)
          .Add(result->results.size());
    }
  }
  t.Print(std::cout,
          "Section 5.5.2 (dense domain, all tuples present): measured "
          "replication vs the matching form, constant-factor agreement");
}

void StarJoinAnalysis() {
  Table t({"N", "f", "d0", "p", "closed-form comm", "optimizer comm",
           "ratio", "paper r formula"});
  for (int n_dims : {2, 3, 4}) {
    const Query query = StarQuery(n_dims);
    const double f = 1e6;
    const double d0 = 1e3;
    std::vector<std::uint64_t> sizes;
    sizes.push_back(static_cast<std::uint64_t>(f));
    for (int i = 0; i < n_dims; ++i) {
      sizes.push_back(static_cast<std::uint64_t>(d0));
    }
    for (double p : {64.0, 4096.0}) {
      const SharesSolution closed = StarShares(query, sizes, p);
      auto opt = OptimizeShares(query, sizes, p);
      const double total_input = f + n_dims * d0;
      const double paper_r =
          (f + n_dims * d0 * std::pow(p, (n_dims - 1.0) / n_dims)) /
          total_input;
      t.AddRow()
          .Add(n_dims)
          .Add(f)
          .Add(d0)
          .Add(p)
          .Add(closed.communication)
          .Add(opt->communication)
          .Add(opt->communication / closed.communication)
          .Add(paper_r);
    }
  }
  t.Print(std::cout,
          "Section 5.5.2 (stars): closed-form shares (dims get share 1, "
          "fact attrs p^{1/N}) vs numeric optimizer");
}

void StarLowerBoundSweep() {
  Table t({"q", "lower bound r", "upper (paper r formula at p(q))"});
  const double f = 1e6, d0 = 1e3;
  const int n_dims = 3;
  for (double q : {2000.0, 8000.0, 32000.0}) {
    // p from q (Sec 5.5.2): p = (N d0 / (e q))^N with e ~ fraction of
    // reducer input from the fact table; use e = 1/2.
    const double p = std::pow(n_dims * d0 / (0.5 * q), n_dims);
    const double upper =
        (f + n_dims * d0 * std::pow(p, (n_dims - 1.0) / n_dims)) /
        (f + n_dims * d0);
    t.AddRow()
        .Add(q)
        .Add(StarJoinLowerBound(f, d0, n_dims, q))
        .Add(upper);
  }
  t.Print(std::cout,
          "Section 5.5.2: star-join lower bound vs achievable replication "
          "(constant-factor gap, as derived)");
}

}  // namespace

int main() {
  std::cout << "=== bench_join: multiway joins (Section 5.5) ===\n";
  EdgeCoverTable();
  ChainJoinSweep();
  DenseChainJoin();
  StarJoinAnalysis();
  StarLowerBoundSweep();
  return 0;
}
