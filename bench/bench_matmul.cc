// Regenerates the Section 6 analysis (E13, E14): matrix multiplication.
//   * One-phase: measured r sits exactly on the 2n^2/q bound (Sec 6.1/6.2).
//   * Two-phase (Sec 6.3, Figs 4-5): measured total communication equals
//     2n^3/s + n^3/t; at the optimal 2:1 tiles it is 4n^3/sqrt(q); the
//     crossover with one-phase sits at q = n^2.
//   * Ablation: aspect ratio 2:1 vs square and 4:1 tiles at fixed q.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/engine/pipeline.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"
#include "src/matmul/problem.h"

namespace {

using mrcost::common::Table;
using namespace mrcost::matmul;  // NOLINT: bench-local brevity

Matrix RandomMatrix(int n, std::uint64_t seed) {
  mrcost::common::SplitMix64 rng(seed);
  Matrix m(n, n);
  m.FillRandom(rng);
  return m;
}

void OnePhaseSweep() {
  const int n = 48;
  const Matrix a = RandomMatrix(n, 1), b_mat = RandomMatrix(n, 2);
  const Matrix expected = SerialMultiply(a, b_mat);
  Table t({"s", "q=2sn", "measured r", "bound 2n^2/q", "r/bound", "pairs",
           "4n^4/q", "max |err|"});
  const auto recipe = MatMulRecipe(n);
  for (int s : {1, 2, 4, 8, 16, 48}) {
    if (n % s != 0) continue;
    auto result = MultiplyOnePhase(a, b_mat, s);
    // Optimality ratio via the engine's shared report machinery.
    const auto report =
        mrcost::engine::CompareToLowerBound(result->metrics, recipe);
    const double q = 2.0 * s * n;
    t.AddRow()
        .Add(s)
        .Add(q)
        .Add(report.realized_r)
        .Add(report.lower_bound_r)
        .Add(report.optimality_ratio)
        .Add(result->metrics.pairs_shuffled)
        .Add(OnePhaseCommunication(n, q))
        .Add(result->product.MaxAbsDiff(expected));
  }
  t.Print(std::cout,
          "Section 6.2 (n=48): one-phase tiling sits exactly on 2n^2/q "
          "(ratio 1 at every q)");
}

void TwoPhaseSweep() {
  const int n = 48;
  const Matrix a = RandomMatrix(n, 3), b_mat = RandomMatrix(n, 4);
  const Matrix expected = SerialMultiply(a, b_mat);
  Table t({"s", "t", "q=2st", "round1 pairs (2n^3/s)", "round2 pairs (n^3/t)",
           "total", "4n^3/sqrt(q)", "r1/bound", "max |err|"});
  const auto recipe = MatMulRecipe(n);
  for (const auto& [s, t_js] :
       std::vector<std::pair<int, int>>{{2, 1}, {4, 2}, {8, 4}, {12, 6},
                                        {16, 8}, {24, 12}}) {
    auto result = MultiplyTwoPhase(a, b_mat, s, t_js);
    const auto reports =
        mrcost::engine::CompareToLowerBound(result->metrics, recipe);
    const double q = 2.0 * s * t_js;
    t.AddRow()
        .Add(s)
        .Add(t_js)
        .Add(q)
        .Add(result->metrics.rounds[0].pairs_shuffled)
        .Add(result->metrics.rounds[1].pairs_shuffled)
        .Add(result->metrics.total_pairs())
        .Add(TwoPhaseCommunication(n, q))
        .Add(reports.front().optimality_ratio)
        .Add(result->product.MaxAbsDiff(expected));
  }
  t.Print(std::cout,
          "Section 6.3 (n=48): two-phase with 2:1 tiles matches "
          "4n^3/sqrt(q); round-1 ratios below 1 are the measured form of "
          "evading the one-round tradeoff with partial sums");
}

void CrossoverSweep() {
  const int n = 64;
  Table t({"q", "one-phase 4n^4/q", "two-phase 4n^3/sqrt(q)",
           "two/one ratio", "winner"});
  for (double q : {64.0, 256.0, 1024.0, 4096.0 /* = n^2: crossover */,
                   8192.0}) {
    const double one = OnePhaseCommunication(n, q);
    const double two = TwoPhaseCommunication(n, q);
    t.AddRow()
        .Add(q)
        .Add(one)
        .Add(two)
        .Add(two / one)
        .Add(two < one ? "two-phase" : (two == one ? "tie" : "one-phase"));
  }
  t.Print(std::cout,
          "Section 6.3 (n=64): crossover at q = n^2 = 4096 — two-phase "
          "never loses below it");

  // Measured confirmation at one matched q.
  const Matrix a = RandomMatrix(n, 5), b_mat = RandomMatrix(n, 6);
  const int s = 8, t_js = 4;  // q = 64
  auto two = MultiplyTwoPhase(a, b_mat, s, t_js);
  auto one = MultiplyOnePhase(a, b_mat, 1);  // q = 2n = 128
  Table m({"algorithm", "q", "measured total pairs"});
  m.AddRow().Add("two-phase (s=8,t=4)").Add(64).Add(
      two->metrics.total_pairs());
  m.AddRow().Add("one-phase (s=1)").Add(128).Add(
      one->metrics.pairs_shuffled);
  m.Print(std::cout, "Measured: two-phase moves far fewer pairs at "
                     "comparable (even smaller) q");
}

void AspectRatioAblation() {
  const int n = 48;
  const Matrix a = RandomMatrix(n, 7), b_mat = RandomMatrix(n, 8);
  Table t({"(s, t) with 2st=q=96", "aspect", "measured total pairs"});
  for (const auto& [s, t_js] : std::vector<std::pair<int, int>>{
           {4, 12}, {8, 6}, {12, 4}, {16, 3}, {24, 2}}) {
    auto result = MultiplyTwoPhase(a, b_mat, s, t_js);
    t.AddRow()
        .Add("(" + std::to_string(s) + ", " + std::to_string(t_js) + ")")
        .Add(static_cast<double>(s) / t_js)
        .Add(result->metrics.total_pairs());
  }
  t.Print(std::cout,
          "Ablation (Sec 6.3): fixed q = 96; total communication is "
          "minimized near aspect ratio s/t = 2");
}

}  // namespace

int main() {
  std::cout << "=== bench_matmul: matrix multiplication (Section 6) ===\n";
  OnePhaseSweep();
  TwoPhaseSweep();
  CrossoverSweep();
  AspectRatioAblation();
  return 0;
}
