// Regenerates the Section 3.4 / 3.5 analysis (E4, E5): the weight-based
// algorithms for q close to 2^b. For each cell side k we measure the
// replication rate (paper: 1 + 2/k in 2-D, 1 + d/k in d dimensions) and
// the most populous cell (paper: k^2 2^b/(pi b) via Stirling), including
// the Figure 2 border-replication scheme.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>

#include "src/common/table.h"
#include "src/core/schema_stats.h"
#include "src/hamming/bounds.h"
#include "src/hamming/schemas.h"

namespace {

using mrcost::common::Table;
using mrcost::core::ComputeSchemaStats;

void TwoDimensional(int b) {
  Table t({"k", "groups", "measured r", "paper 1+2/k", "measured max q",
           "Stirling k^2 2^b/(pi b)", "log2(q) position"});
  for (int k = 1; k <= b / 2; ++k) {
    if ((b / 2) % k != 0) continue;
    auto schema = mrcost::hamming::Weight2DSchema::Make(b, k);
    const auto stats =
        ComputeSchemaStats(*schema, std::uint64_t{1} << b);
    t.AddRow()
        .Add(k)
        .Add(schema->num_groups())
        .Add(stats.replication_rate)
        .Add(1.0 + 2.0 / k)
        .Add(stats.max_reducer_load)
        .Add(mrcost::hamming::Weight2DCellEstimate(b, k))
        .Add(std::log2(static_cast<double>(stats.max_reducer_load)));
  }
  t.Print(std::cout, "Section 3.4: 2-D weight partition, b=" +
                         std::to_string(b) +
                         " (log2 q near b - log2 b; r near 1 + 2/k)");
}

void DDimensional(int b) {
  Table t({"d", "k", "measured r", "paper 1+d/k", "measured max q",
           "Stirling estimate"});
  for (int d : {2, 4}) {
    if (b % d != 0) continue;
    const int piece = b / d;
    for (int k = 1; k <= piece; ++k) {
      if (piece % k != 0) continue;
      auto schema = mrcost::hamming::WeightKDSchema::Make(b, d, k);
      const auto stats =
          ComputeSchemaStats(*schema, std::uint64_t{1} << b);
      t.AddRow()
          .Add(d)
          .Add(k)
          .Add(stats.replication_rate)
          .Add(1.0 + static_cast<double>(d) / k)
          .Add(stats.max_reducer_load)
          .Add(mrcost::hamming::WeightKDCellEstimate(b, d, k));
    }
  }
  t.Print(std::cout, "Section 3.5: d-dimensional generalization, b=" +
                         std::to_string(b));
}

}  // namespace

int main() {
  std::cout << "=== bench_hamming_weight: large-q weight-based algorithms "
               "(Sections 3.4-3.5, Figure 2 scheme) ===\n";
  TwoDimensional(16);
  TwoDimensional(20);
  TwoDimensional(24);  // 16M strings: the asymptotics visibly tighten
  DDimensional(16);
  DDimensional(24);
  return 0;
}
