// Multi-process backend scaling sweep: one shuffle round (the
// "shuffle_sweep" recipe, default 1M pairs into 4096 keys) executed by
// the coordinator/worker runtime at 1, 2, 4, and 8 worker processes,
// under both shuffle transports, against the in-process executor as
// baseline. Prints a human table plus one machine-readable JSON line per
// configuration (prefix BENCH_JSON) for BENCH_*.json trajectory tracking
// and bench/compare_bench.py regression checks (baseline:
// bench/baselines/bench_distd_wire.jsonl).
//
// What to expect: on a multi-core host, makespan should fall from 1 to
// 4 workers (map chunks and reduce shards genuinely run in separate
// processes), then flatten once worker count passes the round's
// chunk/shard parallelism. The round is pinned to num_threads=8 (32
// chunks, 8 shards) so the task graph is host-independent and the sweep
// measures worker scaling, not chunking. The transport dimension is the
// point of comparison: transport=spill pays serialization + shared-dir
// disk write + read-back for every map output, while transport=wire
// keeps runs in worker memory and streams them socket-to-socket, so its
// shuffle_mb_per_s should be a multiple of spill's at >= 4 workers
// (outputs stay byte-identical either way).
//
// Flags: --pairs=N overrides the dataset size; --spill_dir=/
// --keep_spills place and preserve the shuffle transport files;
// --trace_out=/--metrics_out= capture the coordinator's merged
// worker-lane trace. Leave capture unset when measuring.

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/table.h"
#include "src/dist/protocol.h"
#include "src/dist/registry.h"
#include "src/dist/rpc.h"
#include "src/engine/metrics.h"
#include "src/engine/plan.h"
#include "src/obs/export.h"
#include "src/storage/block.h"
#include "src/storage/external_merge.h"
#include "src/storage/run_writer.h"
#include "src/storage/wire_run.h"

namespace {

using mrcost::engine::ExecutionOptions;
using mrcost::engine::PipelineMetrics;

struct RunResult {
  double seconds = 0;
  PipelineMetrics metrics;
};

RunResult RunOnce(const std::string& args, const ExecutionOptions& options) {
  auto plan = mrcost::dist::PlanRegistry::Global().Build("shuffle_sweep", args);
  MRCOST_CHECK_OK(plan.status());
  const auto start = std::chrono::steady_clock::now();
  RunResult run;
  run.metrics = plan->Execute(options);
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

double ShuffleMb(const RunResult& run) {
  std::uint64_t bytes = 0;
  for (const auto& round : run.metrics.rounds) bytes += round.bytes_shuffled;
  return static_cast<double>(bytes) / 1e6;
}

// ----------------------------------------------------------------------
// Transport microbench: the shuffle data path in isolation — encode one
// sorted run, move it through the transport, decode every block on the
// far side — with map/reduce compute excluded. This is the apples-to-
// apples "shuffle throughput" number: the end-to-end sweep above dilutes
// the transport difference with sort/merge/reduce work (entirely so on a
// single-core host, where all processes timeshare one CPU).
//
//   spill: BlockRunFileWriter (default codec) -> run file ->
//          DiskBlockRunSource cursor, exactly the per-run file path.
//   wire:  EncodeRawRunFrames -> RunBlock/RunEnd frames over an AF_UNIX
//          socket -> DecodeAnyBlock per frame, exactly the DataServer ->
//          WireBlockRunSource stream (sans credit stalls: one writer, one
//          reader, kernel socket buffer as the window).

struct TransportResult {
  double seconds = 0;
  double raw_mb = 0;  // pre-codec columnar bytes, the shared numerator
  std::uint64_t rows = 0;
};

mrcost::storage::ColumnarRun SyntheticRun(std::size_t pairs,
                                          std::size_t keys) {
  mrcost::storage::ColumnarRun run;
  run.hashes.reserve(pairs);
  run.positions.reserve(pairs);
  std::string key;
  std::string value;
  for (std::size_t i = 0; i < pairs; ++i) {
    key.clear();
    mrcost::storage::SerializeValue(
        static_cast<std::uint64_t>(i % keys), key);
    value.clear();
    mrcost::storage::SerializeValue(static_cast<std::uint64_t>(i), value);
    run.hashes.push_back(mrcost::storage::HashBytes(key));
    run.positions.push_back(i);
    run.keys.Append(key);
    run.values.Append(value);
  }
  return run;
}

TransportResult SpillTransportOnce(const mrcost::storage::ColumnarRun& run,
                                   const std::string& dir) {
  TransportResult result;
  result.raw_mb = static_cast<double>(run.RawBytes()) / 1e6;
  const std::string path = dir + "/transport.run";
  const auto start = std::chrono::steady_clock::now();
  {
    auto writer = mrcost::storage::BlockRunFileWriter::Create(path);
    MRCOST_CHECK_OK(writer.status());
    MRCOST_CHECK_OK(writer.value().AppendRun(run, 0, run.rows()));
    MRCOST_CHECK_OK(writer.value().Finish());
  }
  mrcost::storage::DiskBlockRunSource source(path);
  while (source.Peek() != nullptr) {
    source.Advance();
    ++result.rows;
  }
  MRCOST_CHECK_OK(source.status());
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  std::filesystem::remove(path);
  return result;
}

TransportResult WireTransportOnce(const mrcost::storage::ColumnarRun& run) {
  namespace storage = mrcost::storage;
  namespace dist = mrcost::dist;
  TransportResult result;
  result.raw_mb = static_cast<double>(run.RawBytes()) / 1e6;

  int sv[2];
  MRCOST_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0);
  const auto start = std::chrono::steady_clock::now();

  std::thread owner([&run, fd = sv[1]] {
    std::vector<std::string> frames;
    storage::BlockEncodeStats stats;
    storage::EncodeRawRunFrames(run, storage::kDefaultBlockBytes, frames,
                                stats);
    for (const std::string& frame : frames) {
      MRCOST_CHECK_OK(dist::WriteRunBlock(fd, frame));
    }
    dist::RunEndMsg end;
    end.blocks = frames.size();
    end.rows = run.rows();
    MRCOST_CHECK_OK(dist::WriteFrame(fd, dist::EncodeRunEnd(end)));
  });

  std::string payload;
  storage::ColumnarRun block;
  while (true) {
    MRCOST_CHECK_OK(dist::ReadFrame(sv[0], payload));
    const auto type = dist::PeekType(payload);
    MRCOST_CHECK_OK(type.status());
    if (*type == dist::MsgType::kRunEnd) break;
    const auto view = dist::RunBlockView(payload);
    MRCOST_CHECK_OK(view.status());
    MRCOST_CHECK_OK(storage::DecodeAnyBlock(*view, block));
    result.rows += block.rows();
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  owner.join();
  ::close(sv[0]);
  ::close(sv[1]);
  return result;
}

void PrintJson(const std::string& backend, const std::string& transport,
               std::size_t workers, std::size_t n, const RunResult& run) {
  // Schema is shaped for bench/compare_bench.py: *_per_s fields are the
  // compared metrics, *_ms fields are ignored, everything else keys the
  // row — so only deterministic fields (and no host facts like core
  // count) may sit outside those suffixes.
  std::printf(
      "BENCH_JSON {\"bench\":\"distd_scaling\",\"backend\":\"%s\","
      "\"transport\":\"%s\",\"workers\":%zu,\"pairs\":%llu,\"inputs\":%zu,"
      "\"wall_ms\":%.3f,"
      "\"mpairs_per_s\":%.3f,\"shuffle_mb_per_s\":%.3f,"
      "\"spill_bytes_written\":%llu,\"merge_passes\":%llu}\n",
      backend.c_str(), transport.c_str(), workers,
      static_cast<unsigned long long>(run.metrics.total_pairs()), n,
      run.seconds * 1e3,
      static_cast<double>(run.metrics.total_pairs()) / 1e6 / run.seconds,
      ShuffleMb(run) / run.seconds,
      static_cast<unsigned long long>(run.metrics.total_spill_bytes()),
      static_cast<unsigned long long>(
          run.metrics.rounds.empty() ? 0
                                     : run.metrics.rounds[0].merge_passes));
}

}  // namespace

int main(int argc, char** argv) {
  const mrcost::obs::CaptureFlags capture =
      mrcost::obs::ParseCaptureFlags(argc, argv);
  mrcost::obs::ScopedCapture trace_scope(capture.trace_out,
                                         capture.metrics_out);

  std::size_t pairs = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pairs=", 0) == 0) {
      pairs = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 8, nullptr, 10));
    }
  }
  const std::string args =
      "pairs=" + std::to_string(pairs) + ",keys=4096,seed=1";

  mrcost::common::Table table({"backend", "transport", "workers", "sec",
                               "Mpairs/s", "shuffle_MB/s", "spill_MB"});

  // Pin the round's task graph (32 chunks, 8 shards) independent of the
  // host's core count: the sweep varies worker processes, nothing else.
  ExecutionOptions in_process;
  in_process.pipeline.round_defaults.num_threads = 8;
  const RunResult baseline = RunOnce(args, in_process);
  table.AddRow()
      .Add("in_process")
      .Add("-")
      .Add("-")
      .Add(baseline.seconds)
      .Add(static_cast<double>(baseline.metrics.total_pairs()) / 1e6 /
           baseline.seconds)
      .Add(ShuffleMb(baseline) / baseline.seconds)
      .Add(static_cast<double>(baseline.metrics.total_spill_bytes()) / 1e6);
  PrintJson("in_process", "none", 0, pairs, baseline);

  for (const std::string transport : {"spill", "wire"}) {
    for (std::size_t workers : {1u, 2u, 4u, 8u}) {
      ExecutionOptions options;
      options.pipeline.round_defaults.num_threads = 8;
      options.backend = mrcost::engine::ExecutionBackend::kMultiProcess;
      options.dist.num_workers = workers;
      options.dist.spill_dir = capture.spill_dir;
      options.dist.keep_spills = capture.keep_spills;
      if (transport == "wire") {
        options.dist.shuffle_transport =
            mrcost::engine::ShuffleTransport::kWireStream;
      }
      const RunResult run = RunOnce(args, options);
      table.AddRow()
          .Add("multi_process")
          .Add(transport)
          .Add(static_cast<std::uint64_t>(workers))
          .Add(run.seconds)
          .Add(static_cast<double>(run.metrics.total_pairs()) / 1e6 /
               run.seconds)
          .Add(ShuffleMb(run) / run.seconds)
          .Add(static_cast<double>(run.metrics.total_spill_bytes()) / 1e6);
      PrintJson("multi_process", transport, workers, pairs, run);
    }
  }

  table.Print(std::cout,
              "multi-process shuffle scaling, " + std::to_string(pairs) +
                  " pairs, " +
                  std::to_string(std::thread::hardware_concurrency()) +
                  " cores (transport spill = shared-dir run files, wire = "
                  "streamed fetch; baseline = in-process executor)");

  // Transport in isolation: encode -> move -> decode, no map/reduce work.
  const mrcost::storage::ColumnarRun transport_run =
      SyntheticRun(pairs, 4096);
  const std::string scratch =
      capture.spill_dir.empty() ? std::string("/tmp") : capture.spill_dir;
  const TransportResult spill_t = SpillTransportOnce(transport_run, scratch);
  const TransportResult wire_t = WireTransportOnce(transport_run);
  MRCOST_CHECK(spill_t.rows == transport_run.rows());
  MRCOST_CHECK(wire_t.rows == transport_run.rows());
  mrcost::common::Table transport_table(
      {"transport", "sec", "raw_MB", "shuffle_MB/s"});
  for (const auto& [name, r] :
       {std::pair<const char*, const TransportResult&>{"spill", spill_t},
        {"wire", wire_t}}) {
    transport_table.AddRow()
        .Add(name)
        .Add(r.seconds)
        .Add(r.raw_mb)
        .Add(r.raw_mb / r.seconds);
    std::printf(
        "BENCH_JSON {\"bench\":\"distd_transport\",\"transport\":\"%s\","
        "\"pairs\":%zu,\"wall_ms\":%.3f,\"shuffle_mb_per_s\":%.3f}\n",
        name, pairs, r.seconds * 1e3, r.raw_mb / r.seconds);
  }
  transport_table.Print(
      std::cout,
      "shuffle transport in isolation (encode -> move -> decode one " +
          std::to_string(pairs) +
          "-pair run; spill = codec + run file round-trip, wire = "
          "identity frames over an AF_UNIX socket)");
  return 0;
}
