// Multi-process backend scaling sweep: one shuffle round (the
// "shuffle_sweep" recipe, default 1M pairs into 4096 keys) executed by
// the coordinator/worker runtime at 1, 2, 4, and 8 worker processes,
// against the in-process executor as baseline. Prints a human table plus
// one machine-readable JSON line per configuration (prefix BENCH_JSON)
// for BENCH_*.json trajectory tracking.
//
// What to expect: on a multi-core host, makespan should fall from 1 to
// 4 workers (map chunks and reduce shards genuinely run in separate
// processes), then flatten once worker count passes the round's
// chunk/shard parallelism. The round is pinned to num_threads=8 (32
// chunks, 8 shards) so the task graph is host-independent and the sweep
// measures worker scaling, not chunking; the emitted "cores" field says
// how much hardware parallelism was actually available — on a 1-core
// host every row is the same serialized work plus per-worker overhead,
// and no speedup is possible. The fixed costs the sweep makes visible
// are the paper's communication cost made literal: every map output
// crosses a process boundary through a spill-format run file, so the
// multi-process rows pay serialization + disk + merge that the
// in-process baseline skips.
//
// Flags: --pairs=N overrides the dataset size; --spill_dir=/
// --keep_spills place and preserve the shuffle transport files;
// --trace_out=/--metrics_out= capture the coordinator's merged
// worker-lane trace. Leave capture unset when measuring.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/common/table.h"
#include "src/dist/registry.h"
#include "src/engine/metrics.h"
#include "src/engine/plan.h"
#include "src/obs/export.h"

namespace {

using mrcost::engine::ExecutionOptions;
using mrcost::engine::PipelineMetrics;

struct RunResult {
  double seconds = 0;
  PipelineMetrics metrics;
};

RunResult RunOnce(const std::string& args, const ExecutionOptions& options) {
  auto plan = mrcost::dist::PlanRegistry::Global().Build("shuffle_sweep", args);
  MRCOST_CHECK_OK(plan.status());
  const auto start = std::chrono::steady_clock::now();
  RunResult run;
  run.metrics = plan->Execute(options);
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

void PrintJson(const std::string& backend, std::size_t workers, std::size_t n,
               const RunResult& run) {
  std::printf(
      "BENCH_JSON {\"bench\":\"distd_scaling\",\"backend\":\"%s\","
      "\"workers\":%zu,\"cores\":%u,\"pairs\":%llu,\"inputs\":%zu,"
      "\"seconds\":%.6f,"
      "\"mpairs_per_sec\":%.3f,\"spill_bytes_written\":%llu,"
      "\"merge_passes\":%llu}\n",
      backend.c_str(), workers, std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(run.metrics.total_pairs()), n,
      run.seconds,
      static_cast<double>(run.metrics.total_pairs()) / 1e6 / run.seconds,
      static_cast<unsigned long long>(run.metrics.total_spill_bytes()),
      static_cast<unsigned long long>(
          run.metrics.rounds.empty() ? 0
                                     : run.metrics.rounds[0].merge_passes));
}

}  // namespace

int main(int argc, char** argv) {
  const mrcost::obs::CaptureFlags capture =
      mrcost::obs::ParseCaptureFlags(argc, argv);
  mrcost::obs::ScopedCapture trace_scope(capture.trace_out,
                                         capture.metrics_out);

  std::size_t pairs = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pairs=", 0) == 0) {
      pairs = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 8, nullptr, 10));
    }
  }
  const std::string args =
      "pairs=" + std::to_string(pairs) + ",keys=4096,seed=1";

  mrcost::common::Table table(
      {"backend", "workers", "sec", "Mpairs/s", "spill_MB"});

  // Pin the round's task graph (32 chunks, 8 shards) independent of the
  // host's core count: the sweep varies worker processes, nothing else.
  ExecutionOptions in_process;
  in_process.pipeline.round_defaults.num_threads = 8;
  const RunResult baseline = RunOnce(args, in_process);
  table.AddRow()
      .Add("in_process")
      .Add("-")
      .Add(baseline.seconds)
      .Add(static_cast<double>(baseline.metrics.total_pairs()) / 1e6 /
           baseline.seconds)
      .Add(static_cast<double>(baseline.metrics.total_spill_bytes()) / 1e6);
  PrintJson("in_process", 0, pairs, baseline);

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    ExecutionOptions options;
    options.pipeline.round_defaults.num_threads = 8;
    options.backend = mrcost::engine::ExecutionBackend::kMultiProcess;
    options.dist.num_workers = workers;
    options.dist.spill_dir = capture.spill_dir;
    options.dist.keep_spills = capture.keep_spills;
    const RunResult run = RunOnce(args, options);
    table.AddRow()
        .Add("multi_process")
        .Add(static_cast<std::uint64_t>(workers))
        .Add(run.seconds)
        .Add(static_cast<double>(run.metrics.total_pairs()) / 1e6 /
             run.seconds)
        .Add(static_cast<double>(run.metrics.total_spill_bytes()) / 1e6);
    PrintJson("multi_process", workers, pairs, run);
  }

  table.Print(std::cout, "multi-process shuffle scaling, " +
                             std::to_string(pairs) +
                             " pairs (spill-file transport; baseline = "
                             "in-process executor)");
  return 0;
}
