// Regenerates Figure 1 of the paper: the Hamming-distance-1 tradeoff
// between reducer size (log2 q on the x-axis) and replication rate. The
// hyperbola r = b/log2(q) is the lower bound; the Splitting algorithms at
// c = b/log2(q) sit exactly on it. Also covers E16: the Section 1.2 /
// Example 1.1 cost-model optimum over the measured curve.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>

#include "src/common/table.h"
#include "src/core/cost_model.h"
#include "src/core/schema_stats.h"
#include "src/core/tradeoff.h"
#include "src/hamming/bounds.h"
#include "src/hamming/schemas.h"

namespace {

using mrcost::common::Table;

/// Measured algorithm points: run every divisor-c Splitting schema on the
/// full 2^b domain and record (log2 q, r).
void MeasuredCurve(int b) {
  Table t({"algorithm", "c", "log2(q)", "measured r", "bound b/log2(q)",
           "on the hyperbola?"});
  std::vector<mrcost::core::TradeoffPoint> curve;
  for (int c = 1; c <= b; ++c) {
    if (b % c != 0) continue;
    auto schema = mrcost::hamming::SplittingSchema::Make(b, c);
    const auto stats = mrcost::core::ComputeSchemaStats(
        *schema, std::uint64_t{1} << b);
    const double log2q = static_cast<double>(b) / c;
    const double bound = c == 1
                             ? 1.0
                             : mrcost::hamming::Hamming1LowerBound(
                                   b, std::ldexp(1.0, b / c));
    t.AddRow()
        .Add(c == 1 ? "single reducer" : "splitting")
        .Add(c)
        .Add(log2q)
        .Add(stats.replication_rate)
        .Add(bound)
        .Add(stats.replication_rate == bound ? "yes" : "no");
    curve.push_back({std::ldexp(1.0, b / c), stats.replication_rate,
                     "c=" + std::to_string(c)});
  }
  // Uneven-segment splitting fills the non-divisor gaps on the hyperbola
  // (within one bit of optimal).
  for (int c = 2; c < b; ++c) {
    if (b % c == 0) continue;  // covered above
    auto schema = mrcost::hamming::UnevenSplittingSchema::Make(b, c);
    const auto stats = mrcost::core::ComputeSchemaStats(
        *schema, std::uint64_t{1} << b);
    const double q = static_cast<double>(stats.max_reducer_load);
    t.AddRow()
        .Add("splitting-uneven")
        .Add(c)
        .Add(std::log2(q))
        .Add(stats.replication_rate)
        .Add(mrcost::hamming::Hamming1LowerBound(b, q))
        .Add(stats.replication_rate ==
                     mrcost::hamming::Hamming1LowerBound(b, q)
                 ? "yes"
                 : "within 1 bit");
    curve.push_back({q, stats.replication_rate,
                     "uneven c=" + std::to_string(c)});
  }

  // The q=2 extreme (one reducer per output pair).
  {
    const mrcost::hamming::PairsSchema schema(b);
    const auto stats = mrcost::core::ComputeSchemaStats(
        schema, std::uint64_t{1} << b);
    t.AddRow()
        .Add("pairs (q=2)")
        .Add(b)
        .Add(1)
        .Add(stats.replication_rate)
        .Add(mrcost::hamming::Hamming1LowerBound(b, 2))
        .Add(stats.replication_rate ==
                     mrcost::hamming::Hamming1LowerBound(b, 2)
                 ? "yes"
                 : "no");
    curve.push_back({2.0, stats.replication_rate, "pairs"});
  }
  t.Print(std::cout, "Figure 1 (measured points), b=" + std::to_string(b));

  // E16: pick the cheapest point for three cluster price profiles.
  Table costs({"price profile (a,b,c)", "chosen algorithm", "q", "r"});
  for (const auto& [model, label] :
       std::vector<std::pair<mrcost::core::CostModel, std::string>>{
           {{1.0, 0.0, 0.0}, "communication only (1,0,0)"},
           {{1000.0, 1.0, 0.0}, "comm + linear reducers (1000,1,0)"},
           {{100000.0, 0.0, 1.0}, "comm + quadratic wall clock (1e5,0,1)"}}) {
    const auto best = mrcost::core::PickCheapest(curve, model);
    costs.AddRow().Add(label).Add(best.label).Add(best.q).Add(best.r);
  }
  costs.Print(std::cout,
              "Example 1.1 cost-model optimum over the measured curve");
}

/// The analytic hyperbola at a larger b for the shape comparison.
void AnalyticCurve(int b) {
  Table t({"log2(q)", "lower bound r = b/log2(q)"});
  const auto curve = mrcost::core::SampleLowerBoundCurve(
      mrcost::hamming::Hamming1Recipe(b), 2.0, std::ldexp(1.0, b), 16);
  for (const auto& point : curve) {
    t.AddRow().Add(std::log2(point.q)).Add(point.r);
  }
  t.Print(std::cout,
          "Figure 1 (analytic hyperbola), b=" + std::to_string(b));
}

}  // namespace

int main() {
  std::cout << "=== bench_fig1_hamming: the Figure 1 tradeoff ===\n";
  MeasuredCurve(12);
  MeasuredCurve(16);
  AnalyticCurve(40);
  return 0;
}
