// External-shuffle sweep: in-memory (sharded) vs spill-to-disk (external)
// throughput on a dataset whose intermediate size is ~4x the memory
// budget, across budget x shards. Prints a human table plus one
// machine-readable JSON line per configuration (prefix BENCH_JSON) for
// BENCH_*.json trajectory tracking.
//
// What to expect: the external shuffle pays serialization + disk + merge
// for its bounded memory, so the in-memory path wins while data fits in
// RAM — the point of the sweep is to measure that price and to watch the
// spill counters (runs, bytes, merge passes) respond to the budget, the
// way Section 2.2's communication cost responds to q.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/engine/job.h"
#include "src/engine/shuffle.h"
#include "src/obs/export.h"

namespace {

namespace engine = mrcost::engine;

struct RunResult {
  double seconds = 0;
  engine::JobMetrics metrics;
};

/// The swept workload: `n` inputs, fanout 2, ~4k distinct keys.
RunResult RunConfig(const std::vector<std::uint64_t>& inputs,
                    const engine::JobOptions& options) {
  auto map_fn = [](const std::uint64_t& x,
                   engine::Emitter<std::uint64_t, std::uint64_t>& emitter) {
    emitter.Emit(mrcost::common::Mix64(x) % 4096, x);
    emitter.Emit(mrcost::common::Mix64(x ^ 0x9e3779b97f4a7c15ULL) % 4096,
                 x + 1);
  };
  auto reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& values,
                      std::vector<std::uint64_t>& out) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : values) sum += v;
    out.push_back(sum);
  };
  const auto start = std::chrono::steady_clock::now();
  auto result =
      engine::RunMapReduce<std::uint64_t, std::uint64_t, std::uint64_t,
                           std::uint64_t>(inputs, map_fn, reduce_fn,
                                          options);
  const auto stop = std::chrono::steady_clock::now();
  RunResult out;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  out.metrics = std::move(result.metrics);
  return out;
}

void PrintJson(const std::string& strategy, std::size_t shards,
               std::uint64_t budget, std::size_t n, const RunResult& run) {
  std::printf(
      "BENCH_JSON {\"bench\":\"external_shuffle\",\"strategy\":\"%s\","
      "\"shards\":%zu,\"memory_budget_bytes\":%llu,\"inputs\":%zu,"
      "\"pairs\":%llu,\"bytes_shuffled\":%llu,\"seconds\":%.6f,"
      "\"mpairs_per_sec\":%.3f,\"spill_runs\":%llu,"
      "\"spill_bytes_written\":%llu,\"merge_passes\":%llu}\n",
      strategy.c_str(), shards,
      static_cast<unsigned long long>(budget), n,
      static_cast<unsigned long long>(run.metrics.pairs_shuffled),
      static_cast<unsigned long long>(run.metrics.bytes_shuffled),
      run.seconds,
      static_cast<double>(run.metrics.pairs_shuffled) / 1e6 / run.seconds,
      static_cast<unsigned long long>(run.metrics.spill_runs),
      static_cast<unsigned long long>(run.metrics.spill_bytes_written),
      static_cast<unsigned long long>(run.metrics.merge_passes));
}

}  // namespace

int main(int argc, char** argv) {
  // Optional --trace_out=/--metrics_out= capture over the whole sweep:
  // the spill/merge spans make the external strategy's disk passes
  // visible. Leave unset when measuring.
  const mrcost::obs::CaptureFlags capture =
      mrcost::obs::ParseCaptureFlags(argc, argv);
  mrcost::obs::ScopedCapture trace_scope(capture.trace_out,
                                         capture.metrics_out);

  // Dataset sized so the intermediate data is ~4x the largest swept
  // budget: n inputs x fanout 2 x 16 bytes/pair = 32n bytes of
  // ByteSizeOf-intermediate.
  const std::size_t n = 1 << 19;
  const std::uint64_t intermediate = 32ull * n;  // = 16 MiB at n = 2^19
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0);

  mrcost::common::Table table(
      {"strategy", "shards", "budget", "x_over_budget", "sec", "Mpairs/s",
       "spill_runs", "spill_MB", "merge_passes"});

  for (std::size_t shards : {1u, 4u}) {
    engine::JobOptions options;
    options.num_shards = shards;
    options.shuffle.strategy = engine::ShuffleStrategy::kSharded;
    const RunResult run = RunConfig(inputs, options);
    table.AddRow()
        .Add(shards == 1 ? "serial" : "sharded")
        .Add(static_cast<std::uint64_t>(shards))
        .Add("-")
        .Add("-")
        .Add(run.seconds)
        .Add(static_cast<double>(run.metrics.pairs_shuffled) / 1e6 /
             run.seconds)
        .Add(std::uint64_t{0})
        .Add(std::uint64_t{0})
        .Add(std::uint64_t{0});
    PrintJson(shards == 1 ? "serial" : "sharded", shards, 0, n, run);
  }

  for (std::uint64_t budget = intermediate / 4; budget >= intermediate / 32;
       budget /= 2) {
    engine::JobOptions options;
    options.shuffle.strategy = engine::ShuffleStrategy::kExternal;
    options.shuffle.memory_budget_bytes = budget;
    options.shuffle.spill_dir = capture.spill_dir;
    const RunResult run = RunConfig(inputs, options);
    table.AddRow()
        .Add("external")
        .Add("-")
        .Add(budget)
        .Add(static_cast<double>(intermediate) / budget)
        .Add(run.seconds)
        .Add(static_cast<double>(run.metrics.pairs_shuffled) / 1e6 /
             run.seconds)
        .Add(run.metrics.spill_runs)
        .Add(static_cast<double>(run.metrics.spill_bytes_written) / 1e6)
        .Add(run.metrics.merge_passes);
    PrintJson("external", 0, budget, n, run);
  }

  table.Print(std::cout,
              "external vs in-memory shuffle, intermediate = " +
                  std::to_string(intermediate) + " bytes (dataset ~4x the "
                  "largest budget)");
  return 0;
}
