// Regenerates Table 2 of the paper: representative upper bounds on the
// replication rate, obtained by RUNNING each constructive algorithm over
// its full input domain (or a dense instance) and measuring r and q —
// then comparing against the matching lower bound, so the table shows the
// gap (1.0 = exactly optimal). Every row goes through the engine's
// CompareToLowerBound against the family's Section 2.4 recipe, so the
// optimality ratios here use the same machinery as the pipeline benches.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/core/lower_bound.h"
#include "src/core/schema_stats.h"
#include "src/engine/metrics.h"
#include "src/engine/pipeline.h"
#include "src/graph/alon.h"
#include "src/graph/generators.h"
#include "src/graph/sample_graph_mr.h"
#include "src/graph/triangle.h"
#include "src/graph/two_path.h"
#include "src/hamming/bounds.h"
#include "src/hamming/schemas.h"
#include "src/join/aggregate.h"
#include "src/join/edge_cover.h"
#include "src/join/hypercube.h"
#include "src/join/query.h"
#include "src/join/shares.h"
#include "src/matmul/problem.h"

namespace {

using mrcost::common::Table;
using mrcost::core::ComputeSchemaStats;

/// A JobMetrics view of schema-enumeration stats, so schema-only rows can
/// share the engine's CompareToLowerBound path with the measured runs.
mrcost::engine::JobMetrics MetricsFromStats(
    const mrcost::core::SchemaStats& stats) {
  mrcost::engine::JobMetrics m;
  m.num_inputs = stats.num_inputs;
  m.pairs_shuffled = stats.total_assignments;
  m.max_reducer_input = stats.max_reducer_load;
  return m;
}

int main_impl() {
  Table t({"Problem / algorithm", "params", "measured q", "measured r",
           "recipe bound @q", "r / bound"});
  // One path for every row: evaluate the round's metrics against the
  // family recipe, print the RoundCostReport.
  auto row = [&t](const std::string& name, const std::string& params,
                  const mrcost::engine::JobMetrics& metrics,
                  const mrcost::core::Recipe& recipe) {
    const auto rep = mrcost::engine::CompareToLowerBound(metrics, recipe);
    t.AddRow()
        .Add(name)
        .Add(params)
        .Add(rep.realized_q)
        .Add(rep.realized_r)
        .Add(rep.lower_bound_r)
        .Add(rep.optimality_ratio);
  };

  // --- Hamming distance 1: Splitting algorithm at several c (Sec 3.3).
  const int b = 16;
  const auto hamming_recipe = mrcost::hamming::Hamming1Recipe(b);
  for (int c : {2, 4, 8}) {
    auto schema = mrcost::hamming::SplittingSchema::Make(b, c);
    const auto stats =
        ComputeSchemaStats(*schema, std::uint64_t{1} << b);
    row("hamming-1 splitting", "b=16, c=" + std::to_string(c),
        MetricsFromStats(stats), hamming_recipe);
  }
  // Weight-based large-q algorithm (Sec 3.4).
  {
    auto schema = mrcost::hamming::Weight2DSchema::Make(b, 2);
    const auto stats =
        ComputeSchemaStats(*schema, std::uint64_t{1} << b);
    row("hamming-1 weight-2D", "b=16, k=2", MetricsFromStats(stats),
        hamming_recipe);
  }

  // --- Triangles: partition algorithm on K_n (Sec 4.1, [21]).
  {
    const mrcost::graph::NodeId n = 60;
    const auto g = mrcost::graph::CompleteGraph(n);
    for (int k : {3, 6}) {
      const auto result = mrcost::graph::MRTriangles(g, k, /*seed=*/11);
      row("triangles partition", "n=60, k=" + std::to_string(k),
          result.metrics, mrcost::graph::TriangleRecipe(n));
    }
  }

  // --- Sample graphs: C4 enumeration on a random graph (Sec 5.2, [2]),
  // against the Section 5.3 edge-scaled recipe (the instance is sparse).
  {
    const mrcost::graph::NodeId n = 40;
    const auto g = mrcost::graph::RandomGnm(n, 300, /*seed=*/5);
    const auto result = mrcost::graph::MRSampleGraphInstances(
        g, mrcost::graph::CycleGraph(4), /*k=*/3, /*seed=*/2);
    row("sample graph C4", "n=40, m=300, k=3", result.metrics,
        mrcost::graph::AlonSampleEdgeRecipe(300, 4));
  }

  // --- 2-paths: node and bucket algorithms (Sec 5.4.2). The bound shown
  // is the exact recipe value (the paper's 2n/q closed form overshoots it
  // slightly at small n because of its binomial approximations).
  {
    const mrcost::graph::NodeId n = 60;
    const auto g = mrcost::graph::CompleteGraph(n);
    const auto recipe = mrcost::graph::TwoPathRecipe(n);
    const auto node = mrcost::graph::MRTwoPathsNode(g);
    row("2-paths node", "n=60", node.metrics, recipe);
    for (int k : {3, 6}) {
      const auto bucket = mrcost::graph::MRTwoPathsBucket(g, k, /*seed=*/4);
      row("2-paths bucket", "n=60, k=" + std::to_string(k), bucket.metrics,
          recipe);
    }
  }

  // --- Multiway join: HyperCube on a chain of 3 (Sec 5.5.2, [1]),
  // against the Section 5.5 recipe at the LP's fractional edge cover
  // (the instance is random, so the dense-domain bound is loose).
  {
    const auto query = mrcost::join::ChainQuery(3);
    mrcost::common::SplitMix64 rng(17);
    const mrcost::join::Value domain = 30;
    std::vector<mrcost::join::Relation> rels;
    for (int e = 0; e < query.num_atoms(); ++e) {
      mrcost::join::Relation rel(
          query.atoms()[e].relation,
          {query.attribute_names()[query.atoms()[e].attributes[0]],
           query.attribute_names()[query.atoms()[e].attributes[1]]});
      for (int i = 0; i < 400; ++i) {
        rel.Add({static_cast<mrcost::join::Value>(rng.UniformBelow(domain)),
                 static_cast<mrcost::join::Value>(
                     rng.UniformBelow(domain))});
      }
      rels.push_back(std::move(rel));
    }
    std::vector<const mrcost::join::Relation*> ptrs;
    for (const auto& r : rels) ptrs.push_back(&r);
    auto shares = mrcost::join::OptimizeShares(query, {400, 400, 400}, 16);
    const auto rounded = mrcost::join::RoundShares(shares->shares, 16);
    auto result = mrcost::join::HyperCubeJoin(query, ptrs, rounded, 1);
    auto cover = mrcost::join::SolveFractionalEdgeCover(query);
    const double rho = cover.ok() ? cover->rho : 2.0;
    row("chain join (N=3) hypercube", "|R|=400, p=16", result->metrics,
        mrcost::join::MultiwayJoinRecipe(domain, query.num_attributes(),
                                         rho));
  }

  // --- Word count: embarrassingly parallel (Example 2.5). One reducer
  // per input word, g(q) = q and |O| <= |I|, so the recipe collapses to
  // the trivial r >= 1 and word count sits exactly on it.
  {
    const auto words = mrcost::join::Tokenize(
        {"to be or not to be", "that is the question", "be that as it may"});
    const auto result = mrcost::join::WordCount(words);
    mrcost::core::Recipe recipe;
    recipe.problem_name = "word-count";
    recipe.g = [](double q) { return q; };
    recipe.num_inputs = static_cast<double>(result.metrics.num_inputs);
    recipe.num_outputs = static_cast<double>(result.metrics.num_outputs);
    row("word count", "3 documents", result.metrics, recipe);
  }

  // --- Matrix multiplication: one-phase tiling (Sec 6.2).
  {
    const int n = 64;
    for (int s : {8, 16}) {
      auto schema = mrcost::matmul::OnePhaseSchema::Make(n, s);
      const auto stats = ComputeSchemaStats(
          *schema, 2 * static_cast<std::uint64_t>(n) * n);
      row("matmul one-phase", "n=64, s=" + std::to_string(s),
          MetricsFromStats(stats), mrcost::matmul::MatMulRecipe(n));
    }
  }

  t.Print(std::cout,
          "Table 2: measured upper bounds vs recipe lower bounds via "
          "CompareToLowerBound (r/bound = 1 means the algorithm is exactly "
          "optimal)");
  return 0;
}

}  // namespace

int main() {
  std::cout << "=== bench_table2: achievable replication rates (paper "
               "Table 2) ===\n";
  return main_impl();
}
