// Regenerates Table 2 of the paper: representative upper bounds on the
// replication rate, obtained by RUNNING each constructive algorithm over
// its full input domain (or a dense instance) and measuring r and q —
// then comparing against the matching lower bound, so the table shows the
// gap (1.0 = exactly optimal).

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/core/lower_bound.h"
#include "src/core/schema_stats.h"
#include "src/graph/alon.h"
#include "src/graph/generators.h"
#include "src/graph/sample_graph_mr.h"
#include "src/graph/triangle.h"
#include "src/graph/two_path.h"
#include "src/hamming/bounds.h"
#include "src/hamming/schemas.h"
#include "src/join/aggregate.h"
#include "src/join/edge_cover.h"
#include "src/join/hypercube.h"
#include "src/join/query.h"
#include "src/join/shares.h"
#include "src/matmul/problem.h"

namespace {

using mrcost::common::Table;
using mrcost::core::ComputeSchemaStats;

int main_impl() {
  Table t({"Problem / algorithm", "params", "measured q", "measured r",
           "lower bound @q", "r / bound"});
  auto row = [&t](const std::string& name, const std::string& params,
                  double q, double r, double bound) {
    t.AddRow().Add(name).Add(params).Add(q).Add(r).Add(bound).Add(
        bound == 0 ? 0 : r / bound);
  };

  // --- Hamming distance 1: Splitting algorithm at several c (Sec 3.3).
  const int b = 16;
  for (int c : {2, 4, 8}) {
    auto schema = mrcost::hamming::SplittingSchema::Make(b, c);
    const auto stats =
        ComputeSchemaStats(*schema, std::uint64_t{1} << b);
    row("hamming-1 splitting", "b=16, c=" + std::to_string(c),
        static_cast<double>(stats.max_reducer_load), stats.replication_rate,
        mrcost::hamming::Hamming1LowerBound(
            b, static_cast<double>(stats.max_reducer_load)));
  }
  // Weight-based large-q algorithm (Sec 3.4).
  {
    auto schema = mrcost::hamming::Weight2DSchema::Make(b, 2);
    const auto stats =
        ComputeSchemaStats(*schema, std::uint64_t{1} << b);
    row("hamming-1 weight-2D", "b=16, k=2",
        static_cast<double>(stats.max_reducer_load), stats.replication_rate,
        mrcost::hamming::Hamming1LowerBound(
            b, static_cast<double>(stats.max_reducer_load)));
  }

  // --- Triangles: partition algorithm on K_n (Sec 4.1, [21]).
  {
    const mrcost::graph::NodeId n = 60;
    const auto g = mrcost::graph::CompleteGraph(n);
    for (int k : {3, 6}) {
      const auto result = mrcost::graph::MRTriangles(g, k, /*seed=*/11);
      row("triangles partition", "n=60, k=" + std::to_string(k),
          static_cast<double>(result.metrics.max_reducer_input),
          result.metrics.replication_rate(),
          mrcost::graph::TriangleLowerBound(
              n, static_cast<double>(result.metrics.max_reducer_input)));
    }
  }

  // --- Sample graphs: C4 enumeration on a random graph (Sec 5.2, [2]).
  {
    const mrcost::graph::NodeId n = 40;
    const auto g = mrcost::graph::RandomGnm(n, 300, /*seed=*/5);
    const auto result = mrcost::graph::MRSampleGraphInstances(
        g, mrcost::graph::CycleGraph(4), /*k=*/3, /*seed=*/2);
    row("sample graph C4", "n=40, m=300, k=3",
        static_cast<double>(result.metrics.max_reducer_input),
        result.metrics.replication_rate(),
        mrcost::graph::AlonSampleEdgeLowerBound(
            300, 4,
            static_cast<double>(result.metrics.max_reducer_input)));
  }

  // --- 2-paths: node and bucket algorithms (Sec 5.4.2). The bound shown
  // is the exact recipe value (the paper's 2n/q closed form overshoots it
  // slightly at small n because of its binomial approximations).
  {
    const mrcost::graph::NodeId n = 60;
    const auto g = mrcost::graph::CompleteGraph(n);
    const auto recipe = mrcost::graph::TwoPathRecipe(n);
    const auto node = mrcost::graph::MRTwoPathsNode(g);
    row("2-paths node", "n=60",
        static_cast<double>(node.metrics.max_reducer_input),
        node.metrics.replication_rate(),
        mrcost::core::ClampedReplicationLowerBound(
            recipe, static_cast<double>(node.metrics.max_reducer_input)));
    for (int k : {3, 6}) {
      const auto bucket = mrcost::graph::MRTwoPathsBucket(g, k, /*seed=*/4);
      row("2-paths bucket", "n=60, k=" + std::to_string(k),
          static_cast<double>(bucket.metrics.max_reducer_input),
          bucket.metrics.replication_rate(),
          mrcost::core::ClampedReplicationLowerBound(
              recipe,
              static_cast<double>(bucket.metrics.max_reducer_input)));
    }
  }

  // --- Multiway join: HyperCube on a chain of 3 (Sec 5.5.2, [1]).
  {
    const auto query = mrcost::join::ChainQuery(3);
    mrcost::common::SplitMix64 rng(17);
    const mrcost::join::Value domain = 30;
    std::vector<mrcost::join::Relation> rels;
    for (int e = 0; e < query.num_atoms(); ++e) {
      mrcost::join::Relation rel(
          query.atoms()[e].relation,
          {query.attribute_names()[query.atoms()[e].attributes[0]],
           query.attribute_names()[query.atoms()[e].attributes[1]]});
      for (int i = 0; i < 400; ++i) {
        rel.Add({static_cast<mrcost::join::Value>(rng.UniformBelow(domain)),
                 static_cast<mrcost::join::Value>(
                     rng.UniformBelow(domain))});
      }
      rels.push_back(std::move(rel));
    }
    std::vector<const mrcost::join::Relation*> ptrs;
    for (const auto& r : rels) ptrs.push_back(&r);
    auto shares = mrcost::join::OptimizeShares(query, {400, 400, 400}, 16);
    const auto rounded = mrcost::join::RoundShares(shares->shares, 16);
    auto result = mrcost::join::HyperCubeJoin(query, ptrs, rounded, 1);
    row("chain join (N=3) hypercube", "|R|=400, p=16",
        static_cast<double>(result->metrics.max_reducer_input),
        result->metrics.replication_rate(),
        1.0);  // trivial bound; Sec 5.5 bound needs the dense domain
  }

  // --- Word count: embarrassingly parallel (Example 2.5).
  {
    const auto words = mrcost::join::Tokenize(
        {"to be or not to be", "that is the question", "be that as it may"});
    const auto result = mrcost::join::WordCount(words);
    row("word count", "3 documents",
        static_cast<double>(result.metrics.max_reducer_input),
        result.metrics.replication_rate(), 1.0);
  }

  // --- Matrix multiplication: one-phase tiling (Sec 6.2).
  {
    const int n = 64;
    for (int s : {8, 16}) {
      auto schema = mrcost::matmul::OnePhaseSchema::Make(n, s);
      const auto stats = ComputeSchemaStats(
          *schema, 2 * static_cast<std::uint64_t>(n) * n);
      row("matmul one-phase", "n=64, s=" + std::to_string(s),
          static_cast<double>(stats.max_reducer_load),
          stats.replication_rate,
          mrcost::matmul::MatMulLowerBound(
              n, static_cast<double>(stats.max_reducer_load)));
    }
  }

  t.Print(std::cout,
          "Table 2: measured upper bounds vs lower bounds (r/bound = 1 "
          "means the algorithm is exactly optimal)");
  return 0;
}

}  // namespace

int main() {
  std::cout << "=== bench_table2: achievable replication rates (paper "
               "Table 2) ===\n";
  return main_impl();
}
