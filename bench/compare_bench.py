#!/usr/bin/env python3
"""Compare BENCH_JSON lines against a checked-in baseline.

Usage: compare_bench.py BASELINE.jsonl CURRENT.jsonl [--threshold 0.20]

Both files hold one JSON object per line (the `BENCH_JSON ` prefix is
accepted and stripped). Records pair up on every non-metric field
(bench/mode/n/...); metrics are throughput (`*_per_s`) and
higher-is-better percentage (`*_pct`, e.g. the skew bench's
recovery_pct) fields. A current record more than --threshold below its
baseline emits a
GitHub warning annotation; the exit code stays 0 so noisy CI runners
don't gate merges, but the warning lands on the workflow summary. Exit is
nonzero only for malformed input or when nothing could be compared.
"""

import argparse
import json
import sys


def load(path):
    records = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("BENCH_JSON"):
                line = line[len("BENCH_JSON"):].strip()
            rec = json.loads(line)
            metrics = {
                k: v for k, v in rec.items()
                if (k.endswith("_per_s") or k.endswith("_pct"))
                and isinstance(v, (int, float))
            }
            key = tuple(sorted(
                (k, v) for k, v in rec.items()
                if k not in metrics and not k.endswith("_ms")
            ))
            if metrics:
                records[key] = metrics
    return records


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fractional regression that triggers a warning")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if not baseline:
        print(f"error: no comparable records in {args.baseline}")
        return 1
    if not current:
        print(f"error: no comparable records in {args.current}")
        return 1

    compared = 0
    regressions = 0
    for key, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(key)
        if cur_metrics is None:
            print(f"note: baseline record {dict(key)} missing from current run")
            continue
        for metric, base in base_metrics.items():
            cur = cur_metrics.get(metric)
            if cur is None or base <= 0:
                continue
            compared += 1
            ratio = cur / base
            label = ", ".join(f"{k}={v}" for k, v in key)
            if ratio < 1.0 - args.threshold:
                regressions += 1
                print(f"::warning title=bench regression::{label} {metric} "
                      f"{cur:.3f} vs baseline {base:.3f} "
                      f"({(1.0 - ratio) * 100:.1f}% slower)")
            else:
                print(f"ok: {label} {metric} {cur:.3f} vs {base:.3f} "
                      f"({ratio:.2f}x baseline)")

    if compared == 0:
        print("error: no overlapping records between baseline and current")
        return 1
    print(f"compared {compared} metric(s), {regressions} regression(s) "
          f"beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
