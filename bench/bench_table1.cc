// Regenerates Table 1 of the paper: the lower bound on replication rate r
// for each analyzed problem, in terms of |I|, |O|, the per-reducer output
// bound g(q), and the closed form — evaluated numerically through the
// Section 2.4 recipe engine so the closed forms are cross-checked against
// the generic machinery, not just restated.

#include <iostream>
#include <string>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/core/lower_bound.h"
#include "src/engine/pipeline.h"
#include "src/graph/alon.h"
#include "src/graph/generators.h"
#include "src/graph/triangle.h"
#include "src/graph/two_path.h"
#include "src/hamming/bitstring.h"
#include "src/hamming/bounds.h"
#include "src/hamming/similarity_join.h"
#include "src/join/edge_cover.h"
#include "src/join/query.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"
#include "src/matmul/problem.h"

namespace {

using mrcost::common::FormatDouble;
using mrcost::common::Table;

void PrintSymbolicTable() {
  Table t({"Problem", "|I|", "|O|", "g(q)", "Lower bound on r"});
  t.AddRow()
      .Add("Hamming-distance-1, b-bit strings")
      .Add("2^b")
      .Add("(b/2) 2^b")
      .Add("(q/2) log2 q")
      .Add("b / log2 q");
  t.AddRow()
      .Add("Triangle finding, n nodes")
      .Add("n^2/2")
      .Add("n^3/6")
      .Add("(sqrt2/3) q^{3/2}")
      .Add("n / sqrt(2q)");
  t.AddRow()
      .Add("Alon-class sample graph, s nodes")
      .Add("n^2/2 (or m)")
      .Add("~n^s")
      .Add("q^{s/2}")
      .Add("(n/sqrt q)^{s-2} or (sqrt(m/q))^{s-2}");
  t.AddRow()
      .Add("2-paths in n-node graph")
      .Add("n^2/2")
      .Add("n^3/2")
      .Add("C(q,2)")
      .Add("2n/q");
  t.AddRow()
      .Add("Multiway join, m vars, rho from [6]")
      .Add("~n^2")
      .Add("~n^m")
      .Add("q^rho")
      .Add("n^{m-2} / q^{rho-1}");
  t.AddRow()
      .Add("n x n matrix multiplication")
      .Add("2 n^2")
      .Add("n^2")
      .Add("q^2 / (4 n^2)")
      .Add("2 n^2 / q");
  t.Print(std::cout, "Table 1 (symbolic): lower bounds on replication rate");
}

void PrintNumericTable() {
  // Evaluate each bound through the generic recipe and against the paper's
  // closed form at representative instance sizes.
  Table t({"Problem", "instance", "q", "recipe bound", "closed form",
           "ratio"});
  auto row = [&t](const std::string& name, const std::string& instance,
                  double q, const mrcost::core::Recipe& recipe,
                  double closed) {
    const double bound = mrcost::core::ReplicationLowerBound(recipe, q);
    t.AddRow()
        .Add(name)
        .Add(instance)
        .Add(q)
        .Add(bound)
        .Add(closed)
        .Add(closed == 0 ? 0.0 : bound / closed);
  };

  const int b = 20;
  for (double q : {4.0, 1024.0, 1048576.0}) {
    row("hamming-1", "b=20", q, mrcost::hamming::Hamming1Recipe(b),
        mrcost::hamming::Hamming1LowerBound(b, q));
  }
  const mrcost::graph::NodeId n = 1000;
  for (double q : {100.0, 10000.0}) {
    row("triangles", "n=1000", q, mrcost::graph::TriangleRecipe(n),
        mrcost::graph::TriangleLowerBound(n, q));
  }
  for (int s : {4, 5}) {
    row("alon sample s=" + std::to_string(s), "n=1000", 10000.0,
        mrcost::graph::AlonSampleRecipe(n, s),
        mrcost::graph::AlonSampleLowerBound(n, s, 10000.0));
  }
  for (double q : {50.0, 500.0}) {
    row("2-paths", "n=1000", q, mrcost::graph::TwoPathRecipe(n),
        mrcost::graph::TwoPathLowerBound(n, q));
  }
  // Multiway join: the triangle (clique s=3) query, rho = 3/2 from the LP.
  {
    auto cover = mrcost::join::SolveFractionalEdgeCover(
        mrcost::join::CliqueQuery(3));
    const double rho = cover.ok() ? cover->rho : 1.5;
    row("multiway join (triangle query)", "n=1000, rho=" + FormatDouble(rho),
        10000.0, mrcost::join::MultiwayJoinRecipe(1000, 3, rho),
        mrcost::join::MultiwayJoinLowerBound(1000, 3, rho, 10000.0));
  }
  const int mat_n = 512;
  for (double q : {2048.0, 65536.0}) {
    row("matmul", "n=512", q, mrcost::matmul::MatMulRecipe(mat_n),
        mrcost::matmul::MatMulLowerBound(mat_n, q));
  }
  t.Print(std::cout,
          "Table 1 (numeric): recipe bound vs paper closed form. Ratio ~1 "
          "where the form is exact; the Alon rows differ by the 2/s! "
          "symmetry constant the paper's Omega() hides");
}

void PrintMeasuredOptimality() {
  // Table 1 states bounds; this section RUNS one constructive algorithm
  // per family on the engine and prints its optimality ratio through
  // CompareToLowerBound, so every bound above is paired with a measured
  // reproduction against the same recipe.
  Table t({"Reproduction", "instance", "q", "r", "bound @q", "r/bound"});
  auto rows = [&t](const std::string& name, const std::string& instance,
                   const mrcost::engine::JobMetrics& metrics,
                   const mrcost::core::Recipe& recipe) {
    const auto rep = mrcost::engine::CompareToLowerBound(metrics, recipe);
    t.AddRow()
        .Add(name)
        .Add(instance)
        .Add(rep.realized_q)
        .Add(rep.realized_r)
        .Add(rep.lower_bound_r)
        .Add(rep.optimality_ratio);
  };

  {
    const int b = 12;
    auto result = mrcost::hamming::SplittingSimilarityJoin(
        mrcost::hamming::AllStrings(b), b, /*k=*/4, /*d=*/1);
    rows("hamming-1 splitting", "b=12, k=4", result->metrics,
         mrcost::hamming::Hamming1Recipe(b));
  }
  {
    const mrcost::graph::NodeId n = 40;
    const auto result = mrcost::graph::MRTriangles(
        mrcost::graph::CompleteGraph(n), /*k=*/4, /*seed=*/11);
    rows("triangles partition", "n=40, k=4", result.metrics,
         mrcost::graph::TriangleRecipe(n));
  }
  {
    const mrcost::graph::NodeId n = 40;
    const auto result =
        mrcost::graph::MRTwoPathsNode(mrcost::graph::CompleteGraph(n));
    rows("2-paths node", "n=40", result.metrics,
         mrcost::graph::TwoPathRecipe(n));
  }
  {
    const int n = 32;
    mrcost::common::SplitMix64 rng(2);
    mrcost::matmul::Matrix a(n, n), b_mat(n, n);
    a.FillRandom(rng);
    b_mat.FillRandom(rng);
    auto result = mrcost::matmul::MultiplyOnePhase(a, b_mat, /*tile=*/8);
    rows("matmul one-phase", "n=32, s=8", result->metrics,
         mrcost::matmul::MatMulRecipe(n));
  }
  t.Print(std::cout,
          "Measured reproductions vs the Table 1 recipes "
          "(CompareToLowerBound): splitting and one-phase tiling sit on "
          "their bounds; the triangle partition algorithm pays its known "
          "constant-factor gap");
}

void PrintMonotonicityChecks() {
  // The recipe is only sound where g(q)/q is increasing; verify for every
  // recipe used above (Section 2.4's caveat, executable).
  Table t({"Recipe", "g(q)/q monotone on [2, 1e7]"});
  auto check = [&t](const std::string& name,
                    const mrcost::core::Recipe& recipe) {
    const auto status = mrcost::core::CheckMonotoneGOverQ(recipe, 2, 1e7);
    t.AddRow().Add(name).Add(status.ok() ? "yes" : status.ToString());
  };
  check("hamming-1 (b=20)", mrcost::hamming::Hamming1Recipe(20));
  check("triangles (n=1000)", mrcost::graph::TriangleRecipe(1000));
  check("alon s=4 (n=1000)", mrcost::graph::AlonSampleRecipe(1000, 4));
  check("2-paths (n=1000)", mrcost::graph::TwoPathRecipe(1000));
  check("multiway join rho=1.5",
        mrcost::join::MultiwayJoinRecipe(1000, 3, 1.5));
  check("matmul (n=512)", mrcost::matmul::MatMulRecipe(512));
  t.Print(std::cout, "Recipe validity checks");
}

}  // namespace

int main() {
  std::cout << "=== bench_table1: lower bounds (paper Table 1) ===\n";
  PrintSymbolicTable();
  PrintNumericTable();
  PrintMeasuredOptimality();
  PrintMonotonicityChecks();
  return 0;
}
