// Regenerates the Section 3.6 analysis (E6): Hamming distances beyond 1.
//   * Ball-2: q = b+1, r = b+1, and each reducer covers Theta(q^2) outputs
//     — the obstruction to extending the Lemma 3.1 bound to d = 2.
//   * Distance-d Splitting: r = C(k,d) ~ (ek/d)^d at q = 2^{bd/k}.
// Both algorithms are additionally exercised end-to-end as similarity
// joins on random instances, with measured communication.

#include <cstdint>
#include <iostream>
#include <string>

#include "src/common/combinatorics.h"
#include "src/common/random.h"
#include "src/common/table.h"
#include "src/core/schema_stats.h"
#include "src/hamming/bounds.h"
#include "src/hamming/schemas.h"
#include "src/hamming/similarity_join.h"

namespace {

using mrcost::common::Table;

void BallAnalysis() {
  Table t({"b", "q (=b+1)", "r", "outputs covered/reducer C(b,2)",
           "Lemma 3.1 value (q/2)log2 q"});
  for (int b : {8, 12, 16, 20}) {
    t.AddRow()
        .Add(b)
        .Add(b + 1)
        .Add(b + 1)
        .Add(mrcost::common::BinomialDouble(b, 2))
        .Add(mrcost::hamming::Hamming1CoverBound(b + 1));
  }
  t.Print(std::cout,
          "Ball-2 (Sec 3.6): reducers cover Theta(q^2) distance-2 outputs, "
          "far above the distance-1 bound");
}

void SplittingDAnalysis() {
  Table t({"b", "k", "d", "r = C(k,d)", "paper (ek/d)^d", "q = 2^{bd/k}",
           "measured r"});
  const int b = 16;
  for (int k : {4, 8}) {
    for (int d = 1; d < k && d <= 3; ++d) {
      auto schema = mrcost::hamming::SplittingDistanceDSchema::Make(b, k, d);
      if (!schema.ok()) continue;
      const auto stats = mrcost::core::ComputeSchemaStats(
          *schema, std::uint64_t{1} << b);
      t.AddRow()
          .Add(b)
          .Add(k)
          .Add(d)
          .Add(schema->replication())
          .Add(mrcost::hamming::SplittingDistanceDReplicationEstimate(k, d))
          .Add(std::uint64_t{1} << (b * d / k))
          .Add(stats.replication_rate);
    }
  }
  t.Print(std::cout, "Distance-d Splitting (Sec 3.6)");
}

void JoinWorkloads() {
  // End-to-end fuzzy joins on random instances: pair counts agree between
  // algorithms; communication differs as the schema analysis predicts.
  Table t({"algorithm", "b", "d", "#strings", "pairs found",
           "pairs shuffled", "measured r", "max reducer input"});
  const int b = 20;
  mrcost::common::SplitMix64 rng(2024);
  auto sample = mrcost::common::SampleWithoutReplacement(
      std::uint64_t{1} << b, 20000, rng);
  std::vector<mrcost::hamming::BitString> strings(sample.begin(),
                                                  sample.end());
  for (int d : {1, 2}) {
    auto splitting =
        mrcost::hamming::SplittingSimilarityJoin(strings, b, 4, d);
    t.AddRow()
        .Add("splitting k=4")
        .Add(b)
        .Add(d)
        .Add(strings.size())
        .Add(splitting->pairs.size())
        .Add(splitting->metrics.pairs_shuffled)
        .Add(splitting->metrics.replication_rate())
        .Add(splitting->metrics.max_reducer_input);
    auto ball = mrcost::hamming::BallSimilarityJoin(strings, b, d);
    t.AddRow()
        .Add("ball-2")
        .Add(b)
        .Add(d)
        .Add(strings.size())
        .Add(ball->pairs.size())
        .Add(ball->metrics.pairs_shuffled)
        .Add(ball->metrics.replication_rate())
        .Add(ball->metrics.max_reducer_input);
    if (splitting->pairs != ball->pairs) {
      std::cout << "ERROR: algorithms disagree for d=" << d << "\n";
      return;
    }
  }
  t.Print(std::cout,
          "End-to-end fuzzy joins, 20000 random 20-bit strings (algorithms "
          "verified to agree)");
}

}  // namespace

int main() {
  std::cout << "=== bench_hamming_distd: Hamming distances beyond 1 "
               "(Section 3.6) ===\n";
  BallAnalysis();
  SplittingDAnalysis();
  JoinWorkloads();
  return 0;
}
