#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by mrcost tracing.

Usage: mrcost_trace_check.py TRACE.json [--require-prediction]
                                        [--require-categories map,shuffle,...]
                                        [--check-fetch-spans]

Checks, in order:
  1. The file parses as JSON and holds a {"traceEvents": [...]} document.
  2. Every event has the mandatory Chrome trace_event fields for its
     phase; complete ('X') spans have dur >= 0 and numeric ts.
  3. Attempt accounting: grouping 'X' events that carry an args.attempt
     annotation by args.task, every task has 1 or 2 attempts and exactly
     one with args.outcome == "win" (the speculative first-wins
     invariant: a backup either rescued the task or lost, never both).
  4. Round accounting: every cat == "round" summary span carries
     realized_q and realized_r; with --require-prediction it must also
     carry predicted_q and predicted_r (plan-driven runs annotate rounds
     with the StageEstimate they were priced at).
  5. Category coverage: with --require-categories, every named category
     appears at least once (CI smokes assert map,shuffle,reduce).
  6. Fetch accounting: with --check-fetch-spans, at least one cat ==
     "fetch" span exists (the wire shuffle's per-(reducer, source-run)
     FetchRun record), every one carries the flow-control args (run,
     reducer, credits, blocks, bytes, stall_ms, credit_wait_ms), and no
     (reducer, run) pair appears twice — a duplicate would mean a reducer
     fetched the same run twice. Only meaningful on failure-free runs:
     a worker death legitimately re-fetches surviving runs, so the kill
     smokes must not pass this flag.

Exit 0 with a one-line summary on success; exit 1 with the list of
violations otherwise. Metadata ('M') records are tolerated and skipped.
"""

import argparse
import json
import sys


def fail(errors):
    for err in errors[:50]:
        print(f"trace_check: {err}", file=sys.stderr)
    if len(errors) > 50:
        print(f"trace_check: ... {len(errors) - 50} more", file=sys.stderr)
    return 1


def check_event_shape(i, event, errors):
    """Structural checks on one event; returns False to skip it entirely."""
    if not isinstance(event, dict):
        errors.append(f"event {i}: not an object")
        return False
    phase = event.get("ph")
    if phase == "M":  # metadata (process_name etc.): no timing fields
        return False
    for field in ("name", "ph", "pid", "tid", "ts"):
        if field not in event:
            errors.append(f"event {i} ({event.get('name')}): missing {field!r}")
            return False
    if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
        errors.append(f"event {i} ({event['name']}): bad ts {event['ts']!r}")
        return False
    if phase == "X":
        dur = event.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(
                f"event {i} ({event['name']}): 'X' span with bad dur {dur!r}")
            return False
    elif phase == "i":
        if event.get("s") not in ("t", "p", "g"):
            errors.append(
                f"event {i} ({event['name']}): instant without scope 's'")
            return False
    else:
        errors.append(f"event {i} ({event['name']}): unknown phase {phase!r}")
        return False
    return True


def check_attempts(events, errors):
    """First-wins invariant over speculative task attempts."""
    attempts = {}
    for event in events:
        args = event.get("args", {})
        if event.get("ph") != "X" or "attempt" not in args:
            continue
        task = args.get("task")
        if task is None:
            errors.append(
                f"span {event['name']!r}: attempt annotation without a task id")
            continue
        attempts.setdefault(task, []).append(args)
    for task, group in sorted(attempts.items()):
        if not 1 <= len(group) <= 2:
            errors.append(
                f"task {task}: {len(group)} attempts recorded (expected 1-2)")
        wins = sum(1 for args in group if args.get("outcome") == "win")
        if wins != 1:
            errors.append(
                f"task {task}: {wins} winning attempts (expected exactly 1)")
        kinds = [args.get("attempt") for args in group]
        if len(group) == 2 and sorted(kinds) != ["backup", "primary"]:
            errors.append(f"task {task}: attempt kinds {kinds} (expected one "
                          "primary and one backup)")
    return len(attempts)


def check_rounds(events, require_prediction, errors):
    rounds = [e for e in events if e.get("cat") == "round"]
    for event in rounds:
        args = event.get("args", {})
        for field in ("realized_q", "realized_r"):
            if not isinstance(args.get(field), (int, float)):
                errors.append(f"round span at ts={event['ts']}: missing "
                              f"numeric {field}")
        if require_prediction:
            for field in ("predicted_q", "predicted_r"):
                if not isinstance(args.get(field), (int, float)):
                    errors.append(f"round span at ts={event['ts']}: missing "
                                  f"{field} (--require-prediction)")
    return len(rounds)


def check_fetch_spans(events, errors):
    """Wire-shuffle FetchRun spans: args present, (reducer, run) unique."""
    fetches = [e for e in events if e.get("cat") == "fetch"]
    if not fetches:
        errors.append("no 'fetch' spans found (--check-fetch-spans)")
        return 0
    required = ("run", "reducer", "credits", "blocks", "bytes",
                "stall_ms", "credit_wait_ms")
    seen = {}
    for event in fetches:
        args = event.get("args", {})
        for field in required:
            if field not in args:
                errors.append(f"fetch span at ts={event['ts']}: missing "
                              f"args.{field}")
        pair = (args.get("reducer"), args.get("run"))
        if None not in pair:
            seen[pair] = seen.get(pair, 0) + 1
    for (reducer, run), count in sorted(seen.items()):
        if count != 1:
            errors.append(f"reducer {reducer} fetched run {run!r} "
                          f"{count} times (expected once)")
    return len(fetches)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--require-prediction", action="store_true",
                        help="round spans must carry predicted_q/predicted_r")
    parser.add_argument("--require-categories", default="",
                        help="comma-separated categories that must appear")
    parser.add_argument("--check-fetch-spans", action="store_true",
                        help="validate wire-shuffle FetchRun span accounting")
    opts = parser.parse_args()

    try:
        with open(opts.trace, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return fail([f"{opts.trace}: {err}"])

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        return fail([f"{opts.trace}: no traceEvents array"])
    raw = doc["traceEvents"]
    if not raw:
        return fail([f"{opts.trace}: traceEvents is empty"])

    errors = []
    events = [e for i, e in enumerate(raw) if check_event_shape(i, e, errors)]

    tasks = check_attempts(events, errors)
    rounds = check_rounds(events, opts.require_prediction, errors)

    seen_categories = {e.get("cat") for e in events}
    for cat in filter(None, opts.require_categories.split(",")):
        if cat not in seen_categories:
            errors.append(f"required category {cat!r} never appears")

    if errors:
        return fail(errors)
    print(f"trace_check: OK — {len(events)} events, {tasks} task attempt "
          f"groups, {rounds} round spans, categories: "
          f"{','.join(sorted(c for c in seen_categories if c))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
