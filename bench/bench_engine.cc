// Engine micro-benchmarks (E17): google-benchmark throughput numbers for
// the simulated map-reduce substrate itself — shuffle rate, thread
// scaling, and two end-to-end kernels (word count, one-phase matmul).
// These validate that the substrate is fast enough that the paper-level
// benches measure schema behaviour, not harness overhead.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/core/lower_bound.h"
#include "src/engine/job.h"
#include "src/engine/pipeline.h"
#include "src/engine/plan.h"
#include "src/engine/shuffle.h"
#include "src/join/aggregate.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"
#include "src/matmul/problem.h"
#include "src/obs/export.h"

namespace {

// Pairs-vs-blocks shuffle comparison on string keys (where the columnar
// layout pays: one serialize+hash per key at emit time, zero key copies
// afterwards). mode 0 runs the pair-based ShardedShuffle the engine used
// before the block representation; mode 1 fills columnar KVBlocks through
// the Emitter and runs BlockShardedShuffle. Both produce identical
// first-seen-ordered results; the delta is pure representation cost.
// Arguments: {n, mode}.
void BM_ShuffleThroughput(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool blocks_mode = state.range(1) == 1;
  const std::size_t num_chunks = 8;
  const std::size_t num_shards = 8;
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  mrcost::common::ThreadPool pool(4);

  auto key_of = [](std::uint64_t x) {
    return "user:" + std::to_string(mrcost::common::Mix64(x) % (1 << 16)) +
           ":metric";
  };

  std::size_t keys_seen = 0;
  double last_ms = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    if (blocks_mode) {
      std::vector<std::unique_ptr<
          mrcost::storage::KVBlock<std::string, std::uint64_t>>>
          blocks;
      for (std::size_t c = 0; c < num_chunks; ++c) {
        mrcost::engine::Emitter<std::string, std::uint64_t> emitter;
        const std::size_t lo = std::min(n, c * chunk);
        const std::size_t hi = std::min(n, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) emitter.Emit(key_of(i), i);
        blocks.push_back(
            std::make_unique<
                mrcost::storage::KVBlock<std::string, std::uint64_t>>(
                std::move(emitter.block())));
      }
      auto result =
          mrcost::engine::BlockShardedShuffle(blocks, pool, num_shards);
      keys_seen = result.keys.size();
      benchmark::DoNotOptimize(result.groups);
    } else {
      std::vector<std::vector<std::pair<std::string, std::uint64_t>>> chunks(
          num_chunks);
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::size_t lo = std::min(n, c * chunk);
        const std::size_t hi = std::min(n, lo + chunk);
        chunks[c].reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
          chunks[c].emplace_back(key_of(i), i);
        }
      }
      auto result = mrcost::engine::ShardedShuffle(chunks, pool, num_shards);
      keys_seen = result.keys.size();
      benchmark::DoNotOptimize(result.groups);
    }
    last_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
  state.counters["keys"] = static_cast<double>(keys_seen);
  // Wall time includes building the chunk/block inputs, so the line
  // compares the full pair path (materialize pairs, shuffle them) with
  // the full block path (emit into blocks, shuffle row indices).
  std::printf(
      "BENCH_JSON {\"bench\":\"shuffle_throughput\",\"mode\":\"%s\","
      "\"n\":%zu,\"keys\":%zu,\"wall_ms\":%.3f,\"mpairs_per_s\":%.3f}\n",
      blocks_mode ? "blocks" : "pairs", n, keys_seen, last_ms,
      last_ms > 0 ? static_cast<double>(n) / last_ms / 1e3 : 0.0);
}
BENCHMARK(BM_ShuffleThroughput)
    ->ArgNames({"n", "blocks"})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_ReplicationFanout(benchmark::State& state) {
  // Each input emitted to `fanout` keys: stresses the replication path the
  // paper's schemas exercise.
  const std::size_t n = 1 << 14;
  const int fanout = static_cast<int>(state.range(0));
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [fanout](const std::uint64_t& x,
                         mrcost::engine::Emitter<std::uint64_t,
                                                 std::uint64_t>& emitter) {
    for (int i = 0; i < fanout; ++i) {
      emitter.Emit(mrcost::common::Mix64(x * 31 + i) % 4096, x);
    }
  };
  auto reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& values,
                      std::vector<std::size_t>& out) {
    out.push_back(values.size());
  };
  for (auto _ : state) {
    auto result = mrcost::engine::RunMapReduce<std::uint64_t, std::uint64_t,
                                               std::uint64_t, std::size_t>(
        inputs, map_fn, reduce_fn, {});
    benchmark::DoNotOptimize(result.metrics.pairs_shuffled);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          fanout);
}
BENCHMARK(BM_ReplicationFanout)->Arg(2)->Arg(8)->Arg(32);

void BM_ThreadScaling(benchmark::State& state) {
  const std::size_t n = 1 << 17;
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0);
  mrcost::engine::JobOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  auto map_fn = [](const std::uint64_t& x,
                   mrcost::engine::Emitter<std::uint64_t, std::uint64_t>&
                       emitter) {
    // A mildly expensive map body so threads have work to share.
    std::uint64_t h = x;
    for (int i = 0; i < 64; ++i) h = mrcost::common::Mix64(h);
    emitter.Emit(h % 997, h);
  };
  auto reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& values,
                      std::vector<std::uint64_t>& out) {
    std::uint64_t acc = 0;
    for (std::uint64_t v : values) acc ^= v;
    out.push_back(acc);
  };
  for (auto _ : state) {
    auto result = mrcost::engine::RunMapReduce<std::uint64_t, std::uint64_t,
                                               std::uint64_t, std::uint64_t>(
        inputs, map_fn, reduce_fn, options);
    benchmark::DoNotOptimize(result.outputs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --------------------------------------------------------------- shuffle
// Sharded-vs-serial shuffle comparison on a 1M-pair workload with ~512k
// distinct keys — enough that the serial shuffle's single hash table falls
// out of cache. Shards = 1 is exactly the seed engine's serial shuffle
// (SerialShuffle); larger shard counts exercise the radix-partitioned
// parallel path. Arguments: {num_threads, num_shards}.
void BM_ShuffleShardedSweep(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0);
  mrcost::engine::JobOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  options.num_shards = static_cast<std::size_t>(state.range(1));
  auto map_fn = [](const std::uint64_t& x,
                   mrcost::engine::Emitter<std::uint64_t, std::uint64_t>&
                       emitter) {
    emitter.Emit(mrcost::common::Mix64(x) % (1 << 19), x);
  };
  auto reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& values,
                      std::vector<std::size_t>& out) {
    out.push_back(values.size());
  };
  for (auto _ : state) {
    auto result = mrcost::engine::RunMapReduce<std::uint64_t, std::uint64_t,
                                               std::uint64_t, std::size_t>(
        inputs, map_fn, reduce_fn, options);
    benchmark::DoNotOptimize(result.outputs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ShuffleShardedSweep)
    ->ArgNames({"threads", "shards"})
    // Seed serial baseline at each thread count.
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    // Sharded shuffle: shard-count sweep at fixed threads, then thread
    // scaling at matching shard counts.
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({4, 8})
    ->Args({4, 16})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({8, 8})
    ->Args({8, 16});

// ------------------------------------------------- pipeline accounting
// Two-phase matrix multiplication through the Pipeline driver, reporting
// each round's realized replication rate r alongside the Section 2.4
// recipe lower bound at the realized reducer load q. The ratio lands
// BELOW 1 by design: round 1 only computes partial sums, so it beats the
// one-round bound — the measured form of Section 6.3's observation that
// two-phase algorithms evade the single-round tradeoff. Compare with
// BM_MatMulOnePhase, whose one-round schema meets the bound exactly.
void BM_TwoPhaseMatmulPipeline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mrcost::common::SplitMix64 rng(5);
  mrcost::matmul::Matrix a(n, n), b(n, n);
  a.FillRandom(rng);
  b.FillRandom(rng);
  mrcost::engine::PipelineMetrics last;
  for (auto _ : state) {
    auto result = mrcost::matmul::MultiplyTwoPhase(a, b, n / 4, n / 8);
    benchmark::DoNotOptimize(result->product);
    last = result->metrics;
  }
  const auto reports = mrcost::engine::CompareToLowerBound(
      last, mrcost::matmul::MatMulRecipe(n));
  if (!reports.empty()) {
    state.counters["r1"] = reports[0].realized_r;
    state.counters["r1_bound"] = reports[0].lower_bound_r;
    state.counters["r1_ratio"] = reports[0].optimality_ratio;
    state.counters["q1"] = reports[0].realized_q;
  }
  if (reports.size() > 1) {
    state.counters["r2"] = reports[1].realized_r;
  }
  state.counters["total_r"] = last.total_replication_rate();
}
BENCHMARK(BM_TwoPhaseMatmulPipeline)->Arg(32)->Arg(64);

void BM_WordCount(benchmark::State& state) {
  std::vector<std::string> docs;
  mrcost::common::SplitMix64 rng(1);
  for (int d = 0; d < 200; ++d) {
    std::string doc;
    for (int w = 0; w < 100; ++w) {
      doc += "word" + std::to_string(rng.UniformBelow(500)) + " ";
    }
    docs.push_back(doc);
  }
  const auto words = mrcost::join::Tokenize(docs);
  for (auto _ : state) {
    auto result = mrcost::join::WordCount(words);
    benchmark::DoNotOptimize(result.counts);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * words.size());
}
BENCHMARK(BM_WordCount);

void BM_MatMulOnePhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mrcost::common::SplitMix64 rng(2);
  mrcost::matmul::Matrix a(n, n), b(n, n);
  a.FillRandom(rng);
  b.FillRandom(rng);
  mrcost::engine::JobMetrics last;
  for (auto _ : state) {
    auto result = mrcost::matmul::MultiplyOnePhase(a, b, n / 4);
    benchmark::DoNotOptimize(result->product);
    last = result->metrics;
  }
  // One-round schema: realized r meets the recipe bound r >= 2n^2/q
  // exactly (ratio 1), the counterpart of BM_TwoPhaseMatmulPipeline.
  mrcost::engine::PipelineMetrics wrapped;
  wrapped.Add(last);
  const auto reports = mrcost::engine::CompareToLowerBound(
      wrapped, mrcost::matmul::MatMulRecipe(n));
  if (!reports.empty()) {
    state.counters["r"] = reports[0].realized_r;
    state.counters["r_bound"] = reports[0].lower_bound_r;
    state.counters["r_ratio"] = reports[0].optimality_ratio;
  }
}
BENCHMARK(BM_MatMulOnePhase)->Arg(32)->Arg(64);

void BM_PlanVsEagerOverhead(benchmark::State& state) {
  // The lazy Plan path (type-erased std::function map/reduce, per-round
  // strategy chooser sampling) vs calling RunMapReduce directly with the
  // same lambdas: range(0) == 0 benches eager, 1 benches the plan. The
  // delta is the price of the Estimate/Explain/choose seam.
  const bool lazy = state.range(0) == 1;
  const std::size_t n = 1 << 17;
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const std::uint64_t& x,
                   mrcost::engine::Emitter<std::uint64_t, std::uint64_t>&
                       emitter) {
    emitter.Emit(mrcost::common::Mix64(x) % 2048, x);
  };
  auto reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& values,
                      std::vector<std::uint64_t>& out) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : values) sum += v;
    out.push_back(sum);
  };
  // The plan is built once (as the eager arm's input vector is), so each
  // lazy iteration measures Execute — the chooser's sampling plus the
  // type-erased lowering — not source re-materialization.
  mrcost::engine::Plan plan;
  auto dataset = plan.Source(inputs)
                     .Map<std::uint64_t, std::uint64_t>(map_fn)
                     .ReduceByKey<std::uint64_t>(reduce_fn);
  for (auto _ : state) {
    if (lazy) {
      auto run = dataset.Execute();
      benchmark::DoNotOptimize(run.outputs);
    } else {
      auto result =
          mrcost::engine::RunMapReduce<std::uint64_t, std::uint64_t,
                                       std::uint64_t, std::uint64_t>(
              inputs, map_fn, reduce_fn, {});
      benchmark::DoNotOptimize(result.outputs);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PlanVsEagerOverhead)->Arg(0)->Arg(1);

// ------------------------------------------------- streaming overlap
// Barrier vs streaming makespan on a two-round workload: round 1 shuffles
// 128k pairs into 4k keys with a deliberately compute-heavy reduce spread
// over 8 shards; round 2 declares a per-key input dependency and regroups
// the sums. streaming:0 runs the sequential round-by-round schedule,
// streaming:1 dissolves the round barrier — round 2's map for shard s
// starts as soon as shard s finishes reducing. Outputs are byte-identical
// either way; the counters (and a BENCH_JSON line per mode) report the
// wall-clock difference, the measured overlap fraction, and the idle
// thread-time at stage barriers.
void BM_StreamingOverlap(benchmark::State& state) {
  const bool streaming = state.range(0) == 1;
  const std::size_t n = 1 << 17;
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0);

  mrcost::engine::Plan plan;
  auto round1 =
      plan.Source(std::move(inputs), "uniform keys")
          .Map<std::uint64_t, std::uint64_t>(
              [](const std::uint64_t& x,
                 mrcost::engine::Emitter<std::uint64_t, std::uint64_t>& e) {
                e.Emit(mrcost::common::Mix64(x) % 4096, x);
              },
              "fan-in")
          .ReduceByKey<std::pair<std::uint64_t, std::uint64_t>>(
              [](const std::uint64_t& key,
                 const std::vector<std::uint64_t>& values,
                 std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                     out) {
                std::uint64_t acc = key;
                for (int pass = 0; pass < 64; ++pass) {
                  for (std::uint64_t v : values) acc = acc * 31 + v;
                }
                out.emplace_back(key, acc);
              });
  auto target =
      round1
          .Map<std::uint64_t, std::uint64_t>(
              [](const std::pair<std::uint64_t, std::uint64_t>& p,
                 mrcost::engine::Emitter<std::uint64_t, std::uint64_t>& e) {
                e.Emit(p.first % 64, p.second);
              },
              "regroup")
          .WithPerKeyInput()
          .ReduceByKey<std::pair<std::uint64_t, std::uint64_t>>(
              [](const std::uint64_t& key,
                 const std::vector<std::uint64_t>& values,
                 std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                     out) {
                std::uint64_t acc = key;
                for (std::uint64_t v : values) acc = acc * 131 + v;
                out.emplace_back(key, acc);
              });

  mrcost::engine::ExecutionOptions options;
  options.pipeline.num_threads = 4;
  options.pipeline.round_defaults.num_shards = 8;
  options.streaming = streaming;

  mrcost::engine::PipelineMetrics last;
  double wall_ms = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto run = target.Execute(options);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    benchmark::DoNotOptimize(run.outputs);
    last = std::move(run.metrics);
  }
  state.counters["makespan_ms"] = wall_ms;
  state.counters["overlap_fraction"] = last.overlap_fraction();
  state.counters["streamed_overlap_ms"] = last.streamed_overlap_ms;
  state.counters["barrier_wait_ms"] = last.total_barrier_wait_ms();
  state.counters["streamed_rounds"] =
      static_cast<double>(last.streamed_rounds);
  std::printf(
      "BENCH_JSON {\"bench\":\"streaming_overlap\",\"mode\":\"%s\","
      "\"makespan_ms\":%.3f,\"overlap_fraction\":%.4f,"
      "\"streamed_overlap_ms\":%.3f,\"barrier_wait_ms\":%.3f,"
      "\"streamed_rounds\":%zu}\n",
      streaming ? "streaming" : "barrier", wall_ms, last.overlap_fraction(),
      last.streamed_overlap_ms, last.total_barrier_wait_ms(),
      last.streamed_rounds);
}
BENCHMARK(BM_StreamingOverlap)
    ->ArgNames({"streaming"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_MatMulTwoPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mrcost::common::SplitMix64 rng(3);
  mrcost::matmul::Matrix a(n, n), b(n, n);
  a.FillRandom(rng);
  b.FillRandom(rng);
  for (auto _ : state) {
    auto result = mrcost::matmul::MultiplyTwoPhase(a, b, n / 4, n / 8);
    benchmark::DoNotOptimize(result->product);
  }
}
BENCHMARK(BM_MatMulTwoPhase)->Arg(32)->Arg(64);

}  // namespace

// Expanded BENCHMARK_MAIN so the bench accepts the shared
// --trace_out=/--metrics_out= capture flags (same convention as the
// examples): when set, every iteration records into one capture scope
// written at exit. Leave them unset when measuring — the perf guard's
// baseline runs with tracing disabled.
int main(int argc, char** argv) {
  const mrcost::obs::CaptureFlags capture =
      mrcost::obs::ParseCaptureFlags(argc, argv);
  // Strip the capture flags before handing argv to google-benchmark, which
  // treats anything it does not know as an error.
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace_out=", 0) == 0 ||
        arg.rfind("--metrics_out=", 0) == 0 ||
        arg.rfind("--spill_dir=", 0) == 0 || arg == "--keep_spills") {
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(passthrough.size());
  mrcost::obs::ScopedCapture trace_scope(capture.trace_out,
                                         capture.metrics_out);
  benchmark::Initialize(&filtered_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
