// Engine micro-benchmarks (E17): google-benchmark throughput numbers for
// the simulated map-reduce substrate itself — shuffle rate, thread
// scaling, and two end-to-end kernels (word count, one-phase matmul).
// These validate that the substrate is fast enough that the paper-level
// benches measure schema behaviour, not harness overhead.

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/engine/job.h"
#include "src/join/aggregate.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"

namespace {

void BM_ShuffleThroughput(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [](const std::uint64_t& x,
                   mrcost::engine::Emitter<std::uint64_t, std::uint64_t>&
                       emitter) {
    emitter.Emit(mrcost::common::Mix64(x) % 1024, x);
  };
  auto reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& values,
                      std::vector<std::uint64_t>& out) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : values) sum += v;
    out.push_back(sum);
  };
  for (auto _ : state) {
    auto result = mrcost::engine::RunMapReduce<std::uint64_t, std::uint64_t,
                                               std::uint64_t, std::uint64_t>(
        inputs, map_fn, reduce_fn, {});
    benchmark::DoNotOptimize(result.outputs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ShuffleThroughput)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_ReplicationFanout(benchmark::State& state) {
  // Each input emitted to `fanout` keys: stresses the replication path the
  // paper's schemas exercise.
  const std::size_t n = 1 << 14;
  const int fanout = static_cast<int>(state.range(0));
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto map_fn = [fanout](const std::uint64_t& x,
                         mrcost::engine::Emitter<std::uint64_t,
                                                 std::uint64_t>& emitter) {
    for (int i = 0; i < fanout; ++i) {
      emitter.Emit(mrcost::common::Mix64(x * 31 + i) % 4096, x);
    }
  };
  auto reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& values,
                      std::vector<std::size_t>& out) {
    out.push_back(values.size());
  };
  for (auto _ : state) {
    auto result = mrcost::engine::RunMapReduce<std::uint64_t, std::uint64_t,
                                               std::uint64_t, std::size_t>(
        inputs, map_fn, reduce_fn, {});
    benchmark::DoNotOptimize(result.metrics.pairs_shuffled);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          fanout);
}
BENCHMARK(BM_ReplicationFanout)->Arg(2)->Arg(8)->Arg(32);

void BM_ThreadScaling(benchmark::State& state) {
  const std::size_t n = 1 << 17;
  std::vector<std::uint64_t> inputs(n);
  std::iota(inputs.begin(), inputs.end(), 0);
  mrcost::engine::JobOptions options;
  options.num_threads = static_cast<std::size_t>(state.range(0));
  auto map_fn = [](const std::uint64_t& x,
                   mrcost::engine::Emitter<std::uint64_t, std::uint64_t>&
                       emitter) {
    // A mildly expensive map body so threads have work to share.
    std::uint64_t h = x;
    for (int i = 0; i < 64; ++i) h = mrcost::common::Mix64(h);
    emitter.Emit(h % 997, h);
  };
  auto reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& values,
                      std::vector<std::uint64_t>& out) {
    std::uint64_t acc = 0;
    for (std::uint64_t v : values) acc ^= v;
    out.push_back(acc);
  };
  for (auto _ : state) {
    auto result = mrcost::engine::RunMapReduce<std::uint64_t, std::uint64_t,
                                               std::uint64_t, std::uint64_t>(
        inputs, map_fn, reduce_fn, options);
    benchmark::DoNotOptimize(result.outputs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_WordCount(benchmark::State& state) {
  std::vector<std::string> docs;
  mrcost::common::SplitMix64 rng(1);
  for (int d = 0; d < 200; ++d) {
    std::string doc;
    for (int w = 0; w < 100; ++w) {
      doc += "word" + std::to_string(rng.UniformBelow(500)) + " ";
    }
    docs.push_back(doc);
  }
  const auto words = mrcost::join::Tokenize(docs);
  for (auto _ : state) {
    auto result = mrcost::join::WordCount(words);
    benchmark::DoNotOptimize(result.counts);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * words.size());
}
BENCHMARK(BM_WordCount);

void BM_MatMulOnePhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mrcost::common::SplitMix64 rng(2);
  mrcost::matmul::Matrix a(n, n), b(n, n);
  a.FillRandom(rng);
  b.FillRandom(rng);
  for (auto _ : state) {
    auto result = mrcost::matmul::MultiplyOnePhase(a, b, n / 4);
    benchmark::DoNotOptimize(result->product);
  }
}
BENCHMARK(BM_MatMulOnePhase)->Arg(32)->Arg(64);

void BM_MatMulTwoPhase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mrcost::common::SplitMix64 rng(3);
  mrcost::matmul::Matrix a(n, n), b(n, n);
  a.FillRandom(rng);
  b.FillRandom(rng);
  for (auto _ : state) {
    auto result = mrcost::matmul::MultiplyTwoPhase(a, b, n / 4, n / 8);
    benchmark::DoNotOptimize(result->product);
  }
}
BENCHMARK(BM_MatMulTwoPhase)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
