// Regenerates the Section 5.1-5.3 analysis (E9): sample graphs in the
// Alon class. Prints Alon-class membership for the paper's examples, then
// measures the MR enumeration algorithm's replication rate against the
// edge-form bound (sqrt(m/q))^{s-2} for patterns of 3 and 4 nodes.

#include <cstdint>
#include <iostream>
#include <string>

#include "src/common/table.h"
#include "src/graph/alon.h"
#include "src/graph/generators.h"
#include "src/graph/sample_graph_mr.h"
#include "src/graph/subgraph.h"

namespace {

using mrcost::common::Table;
using mrcost::graph::Graph;

void MembershipTable() {
  Table t({"sample graph", "s", "in Alon class?", "paper says"});
  auto row = [&t](const std::string& name, const Graph& g,
                  const std::string& expected) {
    t.AddRow()
        .Add(name)
        .Add(static_cast<std::uint64_t>(g.num_nodes()))
        .Add(mrcost::graph::InAlonClass(g) ? "yes" : "no")
        .Add(expected);
  };
  row("triangle C3", mrcost::graph::CycleGraph(3), "yes (cycle)");
  row("square C4", mrcost::graph::CycleGraph(4), "yes (cycle)");
  row("pentagon C5", mrcost::graph::CycleGraph(5), "yes (cycle)");
  row("K4", mrcost::graph::CompleteGraph(4), "yes (complete)");
  row("K5", mrcost::graph::CompleteGraph(5), "yes (complete)");
  row("path, 3 edges", mrcost::graph::PathGraph(3),
      "yes (odd path: matching)");
  row("path, 2 edges (2-path)", mrcost::graph::PathGraph(2),
      "NO (even path)");
  row("path, 4 edges", mrcost::graph::PathGraph(4), "NO (even path)");
  row("star K_{1,3}", Graph(4, {{0, 1}, {0, 2}, {0, 3}}),
      "no (no matching/odd Ham cycle)");
  t.Print(std::cout, "Section 5.1: Alon-class membership (decided by "
                     "partition search)");
}

void EnumerationSweep() {
  const mrcost::graph::NodeId n = 60;
  const std::uint64_t m = 700;
  const auto g = mrcost::graph::RandomGnm(n, m, /*seed=*/41);

  Table t({"pattern", "s", "k", "instances", "measured r", "mean q",
           "bound (sqrt(m/q))^{s-2}", "r/bound"});
  struct Case {
    std::string name;
    Graph pattern;
  };
  const std::vector<Case> cases = {
      {"triangle", mrcost::graph::CycleGraph(3)},
      {"square C4", mrcost::graph::CycleGraph(4)},
      {"K4", mrcost::graph::CompleteGraph(4)},
  };
  for (const Case& c : cases) {
    const std::uint64_t serial = mrcost::graph::CountInstances(c.pattern, g);
    for (int k : {2, 4, 6}) {
      const auto result =
          mrcost::graph::MRSampleGraphInstances(g, c.pattern, k, /*seed=*/7);
      if (result.instance_count != serial) {
        std::cout << "ERROR: count mismatch for " << c.name << "\n";
        return;
      }
      const double mean_q = result.metrics.reducer_sizes.mean();
      const double bound = mrcost::graph::AlonSampleEdgeLowerBound(
          m, static_cast<int>(c.pattern.num_nodes()), mean_q);
      t.AddRow()
          .Add(c.name)
          .Add(static_cast<std::uint64_t>(c.pattern.num_nodes()))
          .Add(k)
          .Add(result.instance_count)
          .Add(result.metrics.replication_rate())
          .Add(mean_q)
          .Add(bound)
          .Add(result.metrics.replication_rate() / bound);
    }
  }
  t.Print(std::cout,
          "Sections 5.2-5.3: MR enumeration on G(60,700); r tracks "
          "(sqrt(m/q))^{s-2} within constants");
}

}  // namespace

int main() {
  std::cout << "=== bench_sample_graphs: Alon-class sample graphs "
               "(Section 5) ===\n";
  MembershipTable();
  EnumerationSweep();
  return 0;
}
