// Cluster-simulator sweeps: the paper charges every computation a
// replication rate r against a reducer capacity q, but placement alone
// says nothing about what skewed keys, heterogeneous machines, or
// stragglers do to the round's wall clock. This bench sweeps the
// simulator over workers x Zipf exponent x straggler factor and shows
//   * load imbalance near 1.0 for uniform keys, growing with the Zipf
//     exponent (the hot key's worker owns the round),
//   * makespan stretching linearly with the straggler slowdown, and
//   * capacity violations appearing as soon as skew pushes a reducer past
//     the q the schema was provisioned for.
// A final table runs all four problem-family reproductions under skewed
// generators with the simulation on, next to their Section 2.4 lower
// bounds via CompareToLowerBound.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/table.h"
#include "src/engine/job.h"
#include "src/engine/pipeline.h"
#include "src/engine/simulator.h"
#include "src/graph/alon.h"
#include "src/graph/generators.h"
#include "src/graph/triangle.h"
#include "src/hamming/bitstring.h"
#include "src/hamming/bounds.h"
#include "src/hamming/similarity_join.h"
#include "src/join/edge_cover.h"
#include "src/join/generators.h"
#include "src/join/hypercube.h"
#include "src/join/query.h"
#include "src/join/shares.h"
#include "src/matmul/matrix.h"
#include "src/matmul/mr_multiply.h"
#include "src/matmul/problem.h"

namespace {

using mrcost::common::Table;
namespace engine = mrcost::engine;

/// The synthetic workload every sweep uses: `n` inputs whose keys are
/// drawn Zipf(exponent) over `num_keys` (exponent 0 = uniform), counted
/// per key.
engine::JobResult<std::pair<std::uint64_t, std::int64_t>> ZipfCountJob(
    std::size_t n, std::uint64_t num_keys, double exponent,
    const engine::JobOptions& options) {
  mrcost::common::SplitMix64 rng(7);
  const mrcost::common::ZipfDistribution zipf(num_keys, exponent);
  std::vector<std::uint64_t> inputs(n);
  for (auto& x : inputs) x = zipf.Sample(rng);
  auto map_fn = [](const std::uint64_t& x,
                   engine::Emitter<std::uint64_t, int>& emitter) {
    emitter.Emit(x, 1);
  };
  auto reduce_fn =
      [](const std::uint64_t& key, const std::vector<int>& values,
         std::vector<std::pair<std::uint64_t, std::int64_t>>& out) {
        out.emplace_back(key, static_cast<std::int64_t>(values.size()));
      };
  return engine::RunMapReduce<std::uint64_t, std::uint64_t, int,
                              std::pair<std::uint64_t, std::int64_t>>(
      inputs, map_fn, reduce_fn, options);
}

void SkewSweep() {
  const std::size_t n = 1 << 18;
  const std::uint64_t num_keys = 4096;
  Table t({"workers", "zipf exponent", "makespan", "ideal", "imbalance",
           "makespan/ideal"});
  for (std::size_t workers : {4u, 16u, 64u}) {
    for (double exponent : {0.0, 0.5, 1.0, 1.5}) {
      engine::JobOptions options;
      options.simulation.num_workers = workers;
      const auto run = ZipfCountJob(n, num_keys, exponent, options);
      const engine::JobMetrics& m = run.metrics;
      const double ideal =
          m.worker_loads.sum() / static_cast<double>(workers);
      t.AddRow()
          .Add(static_cast<std::uint64_t>(workers))
          .Add(exponent)
          .Add(m.makespan)
          .Add(ideal)
          .Add(m.load_imbalance)
          .Add(ideal > 0 ? m.makespan / ideal : 0.0);
    }
  }
  t.Print(std::cout,
          "Skew sweep (256k pairs, 4096 keys): uniform keys stay near "
          "imbalance 1.0; Zipf skew hands one worker the hot key and the "
          "round with it");
}

void StragglerSweep() {
  const std::size_t n = 1 << 18;
  Table t({"stragglers", "slowdown", "jitter", "makespan",
           "straggler impact", "imbalance"});
  for (double fraction : {0.0, 0.25}) {
    for (double slowdown : {1.0, 2.0, 4.0, 8.0}) {
      // One no-straggler baseline (fraction 0, slowdown 1); every other
      // (fraction, slowdown) pairing with either knob neutral duplicates
      // it exactly, since stragglers only bite when both are set.
      const bool baseline = fraction == 0.0 && slowdown == 1.0;
      const bool straggled = fraction > 0.0 && slowdown > 1.0;
      if (!baseline && !straggled) continue;
      for (double jitter : {0.0, 0.2}) {
        engine::JobOptions options;
        options.simulation.num_workers = 16;
        options.simulation.straggler_fraction = fraction;
        options.simulation.straggler_slowdown = slowdown;
        options.simulation.speed_jitter = jitter;
        options.simulation.seed = 13;
        const auto run = ZipfCountJob(n, 4096, 0.0, options);
        t.AddRow()
            .Add(fraction)
            .Add(slowdown)
            .Add(jitter)
            .Add(run.metrics.makespan)
            .Add(run.metrics.straggler_impact)
            .Add(run.metrics.load_imbalance);
      }
    }
  }
  t.Print(std::cout,
          "Straggler sweep (16 workers, uniform keys): load stays balanced "
          "— placement cannot see machine speed — but makespan stretches "
          "with the slowdown factor; jitter adds noise on top");
}

void CapacitySweep() {
  const std::size_t n = 1 << 18;
  const std::uint64_t num_keys = 4096;
  // Provision q for the uniform case: 4x the mean group size.
  const double capacity_q = 4.0 * static_cast<double>(n) / num_keys;
  Table t({"zipf exponent", "provisioned q", "max group", "violations",
           "imbalance"});
  for (double exponent : {0.0, 0.5, 1.0, 1.5}) {
    engine::JobOptions options;
    options.simulation.num_workers = 16;
    options.simulation.reducer_capacity_q = capacity_q;
    const auto run = ZipfCountJob(n, num_keys, exponent, options);
    t.AddRow()
        .Add(exponent)
        .Add(capacity_q)
        .Add(run.metrics.max_reducer_input)
        .Add(run.metrics.capacity_violations)
        .Add(run.metrics.load_imbalance);
  }
  t.Print(std::cout,
          "Capacity sweep: a q provisioned for uniform keys (4x mean) is "
          "violated as soon as the key distribution skews — the simulator "
          "reports it instead of silently overfilling workers");
}

void MakespanRecovery() {
  // The acceptance sweep for the adaptive skew defenses: a Zipf-skewed
  // count job on a straggler-ridden cluster, undefended vs fully defended
  // (sampled-range placement + speculative backups + hot-key splitting at
  // 4x the mean group). Outputs must stay byte-identical — the defenses
  // move work, never change it — while the simulated makespan recovers.
  // One BENCH_JSON line per exponent (metric: recovery_pct; the raw
  // makespans carry an _ms suffix so the comparator treats them as
  // timings, though they are simulated cost units).
  const std::size_t n = 1 << 18;
  const std::uint64_t num_keys = 4096;
  Table t({"zipf exponent", "speculation", "makespan undefended",
           "makespan defended", "recovery %", "imbalance undef",
           "imbalance def", "hot keys split", "backups won/launched"});
  for (double exponent : {1.2, 1.6}) {
    engine::JobOptions undefended;
    undefended.simulation.num_workers = 16;
    undefended.simulation.straggler_fraction = 0.25;
    undefended.simulation.straggler_slowdown = 4.0;
    undefended.simulation.speed_jitter = 0.1;
    undefended.simulation.seed = 21;
    const auto slow = ZipfCountJob(n, num_keys, exponent, undefended);

    for (bool speculation : {false, true}) {
      engine::JobOptions defended = undefended;
      defended.simulation.defense.partitioner =
          engine::PartitionerKind::kSampledRange;
      defended.simulation.defense.speculation = speculation;
      defended.simulation.defense.speculation_slowdown_factor = 1.5;
      defended.simulation.defense.hot_key_split_threshold =
          4 * n / num_keys;
      const auto fast = ZipfCountJob(n, num_keys, exponent, defended);
      // The in-process byte-identity smoke: defenses must not change one
      // output bit.
      MRCOST_CHECK(fast.outputs == slow.outputs);

      const double recovery_pct =
          slow.metrics.makespan > 0
              ? 100.0 * (slow.metrics.makespan - fast.metrics.makespan) /
                    slow.metrics.makespan
              : 0.0;
      t.AddRow()
          .Add(exponent)
          .Add(speculation ? "on" : "off")
          .Add(slow.metrics.makespan)
          .Add(fast.metrics.makespan)
          .Add(recovery_pct)
          .Add(slow.metrics.load_imbalance)
          .Add(fast.metrics.load_imbalance)
          .Add(fast.metrics.hot_keys_split)
          .Add(std::to_string(fast.metrics.speculative_won) + "/" +
               std::to_string(fast.metrics.speculative_launched));
      std::printf(
          "BENCH_JSON {\"bench\":\"skew_recovery\",\"zipf\":%.1f,"
          "\"workers\":16,\"speculation\":\"%s\","
          "\"undefended_makespan_ms\":%.3f,\"defended_makespan_ms\":%.3f,"
          "\"recovery_pct\":%.3f}\n",
          exponent, speculation ? "on" : "off", slow.metrics.makespan,
          fast.metrics.makespan, recovery_pct);
    }
  }
  t.Print(std::cout,
          "Makespan recovery (256k Zipf pairs, 16 workers, 25% stragglers "
          "at 4x): sampled-range placement + hot-key splitting recover the "
          "skew, speculative backups recover the stragglers — outputs "
          "byte-identical throughout (checked in-process)");
}

/// Shared simulated cluster for the four family reproductions below.
engine::SimulationOptions FamilyCluster() {
  engine::SimulationOptions sim;
  sim.num_workers = 16;
  sim.straggler_fraction = 0.25;
  sim.straggler_slowdown = 4.0;
  sim.speed_jitter = 0.1;
  sim.seed = 21;
  return sim;
}

void AddFamilyRow(Table& t, const std::string& name,
                  const std::string& instance,
                  const engine::JobMetrics& metrics,
                  const mrcost::core::Recipe& recipe) {
  const auto report = engine::CompareToLowerBound(metrics, recipe);
  t.AddRow()
      .Add(name)
      .Add(instance)
      .Add(report.realized_q)
      .Add(report.realized_r)
      .Add(report.lower_bound_r)
      .Add(report.optimality_ratio)
      .Add(report.makespan)
      .Add(report.load_imbalance)
      .Add(report.straggler_impact)
      .Add(report.capacity_violations);
}

void FamilyDriversUnderSkew() {
  Table t({"reproduction", "skewed instance", "q", "r", "bound @q",
           "r/bound", "makespan", "imbalance", "straggler impact",
           "violations"});
  engine::JobOptions options;
  options.simulation = FamilyCluster();

  // Hamming: strings huddled around Zipf-popular hubs.
  {
    const int b = 16;
    const auto strings =
        mrcost::hamming::SkewedStrings(b, 4000, /*num_hubs=*/8,
                                       /*exponent=*/1.2, /*seed=*/3);
    auto result = mrcost::hamming::SplittingSimilarityJoin(strings, b,
                                                           /*k=*/4,
                                                           /*d=*/1, options);
    AddFamilyRow(t, "hamming splitting", "4000 hub-clustered 16-bit",
                 result->metrics, mrcost::hamming::Hamming1Recipe(b));
  }

  // Join: chain HyperCube over Zipf-valued relations.
  {
    const auto query = mrcost::join::ChainQuery(3);
    const mrcost::join::Value domain = 30;
    const auto rels = mrcost::join::ZipfRelationsForQuery(
        query, /*size_per_relation=*/400, domain, /*exponent=*/1.0,
        /*seed=*/17);
    std::vector<const mrcost::join::Relation*> ptrs;
    for (const auto& r : rels) ptrs.push_back(&r);
    auto shares =
        mrcost::join::OptimizeShares(query, {400, 400, 400}, 16);
    const auto rounded = mrcost::join::RoundShares(shares->shares, 16);
    auto result =
        mrcost::join::HyperCubeJoin(query, ptrs, rounded, /*seed=*/1,
                                    options);
    AddFamilyRow(t, "chain join hypercube", "N=3, zipf(1.0) values",
                 result->metrics,
                 mrcost::join::MultiwayJoinRecipe(domain, 4, /*rho=*/2.0));
  }

  // Matmul: the one family whose placement is purely structural (dense
  // tiles, value-independent) — its skew here is the simulated cluster
  // itself (stragglers + jitter); FillZipf only shapes the numerics.
  {
    const int n = 64;
    mrcost::common::SplitMix64 rng(9);
    mrcost::matmul::Matrix a(n, n), b_mat(n, n);
    a.FillZipf(rng, 1.0);
    b_mat.FillZipf(rng, 1.0);
    auto result = mrcost::matmul::MultiplyOnePhase(a, b_mat, /*tile=*/8,
                                                   options);
    AddFamilyRow(t, "matmul one-phase", "n=64, cluster skew only",
                 result->metrics, mrcost::matmul::MatMulRecipe(n));
  }

  // Graph: triangles on a Zipf-endpoint graph (hub nodes). The instance
  // is sparse, so it scores against the Section 5.3 edge-scaled recipe
  // (triangle = Alon-class sample graph with s=3, bound sqrt(m/q)) — the
  // dense-domain TriangleRecipe would undershoot the realized r.
  {
    const mrcost::graph::NodeId n = 300;
    const auto g = mrcost::graph::ZipfGraph(n, 2000, /*exponent=*/1.0,
                                            /*seed=*/23);
    const auto result =
        mrcost::graph::MRTriangles(g, /*k=*/4, /*seed=*/11, options);
    AddFamilyRow(t, "triangles partition",
                 "n=300, m=" + std::to_string(g.num_edges()) + " zipf(1.0)",
                 result.metrics,
                 mrcost::graph::AlonSampleEdgeRecipe(g.num_edges(), 3));
  }

  t.Print(std::cout,
          "All four reproductions under skewed generators on a simulated "
          "16-worker cluster (25% stragglers at 4x, 10% jitter): realized "
          "q/r vs the Section 2.4 bound, plus what the skew costs in "
          "makespan");
}

}  // namespace

int main() {
  std::cout << "=== bench_simulator: per-worker queues, skew injection, "
               "stragglers ===\n";
  SkewSweep();
  StragglerSweep();
  CapacitySweep();
  MakespanRecovery();
  FamilyDriversUnderSkew();
  return 0;
}
