// Regenerates the Section 2 model-level results and the repository's
// exploratory extensions:
//   * Examples 2.1/2.4/2.5 as model problems: the canonical schemas have
//     r = 1 (no tradeoff — embarrassingly parallel / plain hash join).
//   * Section 2.3's presence model: realized reducer loads concentrate at
//     x * q_t, justifying the q_t = q/x rescaling.
//   * Section 3.6 open problem probe: empirical g(q) for Hamming
//     distances 1 and 2 by exact search — d=1 matches Lemma 3.1 exactly
//     at powers of two; d=2 grows quadratically (the Ball-2 obstruction).
//   * Combiners (footnote 1): map-side combining slashes communication
//     for aggregation-shaped jobs and does nothing for join-shaped ones.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/core/presence.h"
#include "src/core/schema_stats.h"
#include "src/core/schema_validator.h"
#include "src/engine/job.h"
#include "src/hamming/bounds.h"
#include "src/hamming/coverage.h"
#include "src/hamming/schemas.h"
#include "src/join/problem.h"

namespace {

using mrcost::common::Table;

void ExampleProblems() {
  Table t({"problem", "|I|", "|O|", "schema", "valid", "r", "max q"});
  {
    const mrcost::join::NaturalJoinProblem p(16, 32, 16);
    const mrcost::join::HashJoinSchema schema(p);
    const auto status = mrcost::core::ValidateSchema(p, schema, 32);
    const auto stats =
        mrcost::core::ComputeSchemaStats(schema, p.num_inputs());
    t.AddRow()
        .Add("Ex 2.1 natural join")
        .Add(p.num_inputs())
        .Add(p.num_outputs())
        .Add(schema.name())
        .Add(status.ok() ? "yes" : status.ToString())
        .Add(stats.replication_rate)
        .Add(stats.max_reducer_load);
  }
  {
    const mrcost::join::GroupByProblem p(64, 128);
    const mrcost::join::GroupBySchema schema(p, 128);
    const auto status = mrcost::core::ValidateSchema(p, schema, 128);
    const auto stats =
        mrcost::core::ComputeSchemaStats(schema, p.num_inputs());
    t.AddRow()
        .Add("Ex 2.4 group-by-sum")
        .Add(p.num_inputs())
        .Add(p.num_outputs())
        .Add(schema.name())
        .Add(status.ok() ? "yes" : status.ToString())
        .Add(stats.replication_rate)
        .Add(stats.max_reducer_load);
  }
  t.Print(std::cout,
          "Examples 2.1 / 2.4: canonical schemas validate with r = 1 — "
          "no replication/parallelism tradeoff (Ex 2.5 word count is "
          "measured in bench_table2)");
}

void PresenceConcentration() {
  // The Splitting schema's reducers all hold q_t = 2^{b/c} potential
  // strings; sample instances at several presence probabilities.
  const int b = 16, c = 2;
  auto schema = mrcost::hamming::SplittingSchema::Make(b, c);
  Table t({"x", "q_t", "expected x*q_t", "realized max load (mean)",
           "mean relative deviation"});
  for (double x : {0.5, 0.25, 0.05}) {
    const auto stats = mrcost::core::SimulatePresence(
        *schema, std::uint64_t{1} << b, x, /*trials=*/10, /*seed=*/77);
    t.AddRow()
        .Add(x)
        .Add(stats.target_q)
        .Add(stats.expected_load)
        .Add(stats.realized_max_load.mean())
        .Add(stats.relative_deviation.mean());
  }
  t.Print(std::cout,
          "Section 2.3: realized reducer loads concentrate at x*q_t "
          "(Splitting, b=16, c=2, 256 reducers)");
}

void EmpiricalCoverage() {
  Table t({"b", "q", "exact g(q), d=1", "Lemma 3.1 (q/2)log2 q",
           "exact g(q), d=2", "C(q,2) (quadratic ref)"});
  const int b = 5;
  for (int q : {2, 3, 4, 5, 6, 8}) {
    t.AddRow()
        .Add(b)
        .Add(q)
        .Add(mrcost::hamming::ExactMaxCoverage(b, 1, q))
        .Add(mrcost::hamming::Hamming1CoverBound(q))
        .Add(mrcost::hamming::ExactMaxCoverage(b, 2, q))
        .Add(static_cast<double>(q) * (q - 1) / 2.0);
  }
  t.Print(std::cout,
          "Section 3.6 probe: exact max outputs coverable by q inputs "
          "(d=1 respects Lemma 3.1, tight at powers of 2; d=2 tracks the "
          "quadratic shape that blocks the recipe)");
}

void CombinerEffect() {
  // Aggregation-shaped job: 100k occurrences of 100 distinct words.
  std::vector<int> inputs(100000);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = static_cast<int>(i % 100);
  }
  auto map_fn = [](const int& x,
                   mrcost::engine::Emitter<int, std::int64_t>& emitter) {
    emitter.Emit(x, 1);
  };
  auto combine_fn = [](std::int64_t a, std::int64_t b) { return a + b; };
  auto reduce_fn = [](const int& key,
                      const std::vector<std::int64_t>& values,
                      std::vector<std::pair<int, std::int64_t>>& out) {
    std::int64_t total = 0;
    for (std::int64_t v : values) total += v;
    out.emplace_back(key, total);
  };
  auto plain = mrcost::engine::RunMapReduce<int, int, std::int64_t,
                                            std::pair<int, std::int64_t>>(
      inputs, map_fn, reduce_fn, {});
  auto combined =
      mrcost::engine::RunMapReduceCombined<int, int, std::int64_t,
                                           std::pair<int, std::int64_t>>(
          inputs, map_fn, combine_fn, reduce_fn, {});
  Table t({"variant", "map-emitted pairs", "pairs shuffled",
           "max reducer input"});
  t.AddRow()
      .Add("no combiner")
      .Add(plain.metrics.pairs_before_combine)
      .Add(plain.metrics.pairs_shuffled)
      .Add(plain.metrics.max_reducer_input);
  t.AddRow()
      .Add("with combiner")
      .Add(combined.metrics.pairs_before_combine)
      .Add(combined.metrics.pairs_shuffled)
      .Add(combined.metrics.max_reducer_input);
  t.Print(std::cout,
          "Footnote 1, executable: combining folds mapper-side computation "
          "into less communication for aggregations (100k occurrences, "
          "100 words)");
}

}  // namespace

int main() {
  std::cout << "=== bench_model: the Section 2 model, presence "
               "concentration, and exploratory extensions ===\n";
  ExampleProblems();
  PresenceConcentration();
  EmpiricalCoverage();
  CombinerEffect();
  return 0;
}
