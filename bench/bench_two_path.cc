// Regenerates the Section 5.4 analysis (E10): 2-paths, the simplest
// non-Alon sample graph. The lower bound 2n/q is compared against both
// upper-bound algorithms: the node algorithm (q = n, r = 2, meeting the
// bound) and the bucket-pair algorithm (q = 2n/k, r = 2(k-1) — within a
// factor ~2 of the bound, as the paper notes).

#include <cstdint>
#include <iostream>

#include "src/common/table.h"
#include "src/core/lower_bound.h"
#include "src/graph/generators.h"
#include "src/graph/two_path.h"

namespace {

using mrcost::common::Table;

void DenseSweep() {
  const mrcost::graph::NodeId n = 96;
  const auto g = mrcost::graph::CompleteGraph(n);
  const std::uint64_t expected = mrcost::graph::SerialTwoPathCount(g);
  // Exact recipe bound (the 2n/q closed form overshoots slightly at
  // finite n due to its binomial approximations).
  const auto recipe = mrcost::graph::TwoPathRecipe(n);
  auto exact_bound = [&recipe](double q) {
    return mrcost::core::ClampedReplicationLowerBound(recipe, q);
  };

  Table t({"algorithm", "k", "measured r", "measured max q",
           "exact bound @q", "r/bound", "2-paths found"});
  {
    const auto result = mrcost::graph::MRTwoPathsNode(g);
    const double q = static_cast<double>(result.metrics.max_reducer_input);
    const double bound = exact_bound(q);
    t.AddRow()
        .Add("node (q=n)")
        .Add("-")
        .Add(result.metrics.replication_rate())
        .Add(result.metrics.max_reducer_input)
        .Add(bound)
        .Add(result.metrics.replication_rate() / bound)
        .Add(result.paths.size());
    if (result.paths.size() != expected) {
      std::cout << "ERROR: node algorithm count mismatch\n";
      return;
    }
  }
  for (int k : {2, 3, 4, 6, 8}) {
    const auto result = mrcost::graph::MRTwoPathsBucket(g, k, /*seed=*/31);
    if (result.paths.size() != expected) {
      std::cout << "ERROR: bucket algorithm count mismatch at k=" << k
                << "\n";
      return;
    }
    const double q = static_cast<double>(result.metrics.max_reducer_input);
    const double bound = exact_bound(q);
    t.AddRow()
        .Add("bucket")
        .Add(std::to_string(k))
        .Add(result.metrics.replication_rate())
        .Add(result.metrics.max_reducer_input)
        .Add(bound)
        .Add(result.metrics.replication_rate() / bound)
        .Add(result.paths.size());
  }
  t.Print(std::cout,
          "Section 5.4 (K_96): node algorithm meets 2n/q exactly; the "
          "bucket algorithm is within ~2x for small q");
}

void SparseCheck() {
  // On sparse graphs both algorithms agree and replication is unchanged
  // (it depends only on k, not the data).
  const mrcost::graph::NodeId n = 300;
  Table t({"m", "k", "2-paths", "node r", "bucket r"});
  for (std::uint64_t m : {1000ull, 5000ull}) {
    const auto g = mrcost::graph::RandomGnm(n, m, m + 1);
    const auto node = mrcost::graph::MRTwoPathsNode(g);
    for (int k : {4, 8}) {
      const auto bucket = mrcost::graph::MRTwoPathsBucket(g, k, 3);
      if (bucket.paths != node.paths) {
        std::cout << "ERROR: sparse mismatch\n";
        return;
      }
      t.AddRow()
          .Add(m)
          .Add(k)
          .Add(bucket.paths.size())
          .Add(node.metrics.replication_rate())
          .Add(bucket.metrics.replication_rate());
    }
  }
  t.Print(std::cout, "Sparse G(300, m) cross-check");
}

}  // namespace

int main() {
  std::cout << "=== bench_two_path: 2-paths (Section 5.4) ===\n";
  DenseSweep();
  SparseCheck();
  return 0;
}
