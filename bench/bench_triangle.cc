// Regenerates the Section 4 analysis (E7, E8): triangle finding.
//   * Dense (all edges present): the partition algorithm's measured r vs
//     the n/sqrt(2q) lower bound across bucket counts k.
//   * Sparse G(n,m): measured r vs the sqrt(m/q) form after the Section
//     4.2 rescaling, plus the expected-vs-max reducer load concentration.
//   * Ablation: the multiset-ownership dedup rule (duplicates without it).

#include <cstdint>
#include <iostream>
#include <string>

#include "src/common/table.h"
#include "src/graph/generators.h"
#include "src/graph/triangle.h"

namespace {

using mrcost::common::Table;
using mrcost::graph::CompleteGraph;
using mrcost::graph::MRTriangles;
using mrcost::graph::RandomGnm;

void DenseSweep() {
  const mrcost::graph::NodeId n = 80;
  const auto g = CompleteGraph(n);
  const std::uint64_t triangles = mrcost::graph::SerialTriangleCount(g);
  Table t({"k", "measured r", "measured max q", "bound n/sqrt(2q)",
           "r/bound", "triangles found"});
  for (int k : {2, 3, 4, 6, 8, 12}) {
    const auto result = MRTriangles(g, k, /*seed=*/9);
    if (result.triangles.size() != triangles) {
      std::cout << "ERROR: wrong triangle count at k=" << k << "\n";
      return;
    }
    const double q = static_cast<double>(result.metrics.max_reducer_input);
    const double bound = mrcost::graph::TriangleLowerBound(n, q);
    t.AddRow()
        .Add(k)
        .Add(result.metrics.replication_rate())
        .Add(result.metrics.max_reducer_input)
        .Add(bound)
        .Add(result.metrics.replication_rate() / bound)
        .Add(result.triangles.size());
  }
  t.Print(std::cout,
          "Section 4.1 (dense, K_80): partition algorithm vs n/sqrt(2q) — "
          "constant-factor match");
}

void SparseSweep() {
  const mrcost::graph::NodeId n = 400;
  Table t({"m", "k", "measured r", "mean q", "max q", "bound sqrt(m/q)",
           "r/bound", "triangles"});
  for (std::uint64_t m : {2000ull, 8000ull, 32000ull}) {
    const auto g = RandomGnm(n, m, /*seed=*/m);
    for (int k : {4, 8}) {
      const auto result = MRTriangles(g, k, /*seed=*/13);
      const double mean_q = result.metrics.reducer_sizes.mean();
      const double bound =
          mrcost::graph::SparseTriangleLowerBound(m, mean_q);
      t.AddRow()
          .Add(m)
          .Add(k)
          .Add(result.metrics.replication_rate())
          .Add(mean_q)
          .Add(result.metrics.max_reducer_input)
          .Add(bound)
          .Add(result.metrics.replication_rate() / bound)
          .Add(result.triangles.size());
    }
  }
  t.Print(std::cout,
          "Section 4.2 (sparse G(n,m), n=400): measured r vs sqrt(m/q) at "
          "the expected load q");
}

void OneVsTwoRounds() {
  // The 1-round partition algorithm vs the 2-round node-iterator of [21]
  // on a skewed (preferential-attachment) graph — the multi-round
  // comparison Section 7.1 invites, plus the skew sensitivity the paper
  // flags ("graphs with some nodes whose degree is higher than q ...
  // require alternative algorithms").
  const auto g = mrcost::graph::PreferentialAttachmentGraph(
      2000, /*attach=*/4, /*seed=*/33);
  Table t({"algorithm", "rounds", "total pairs", "max reducer input",
           "worker-load skew (max/mean)", "triangles"});
  mrcost::engine::JobOptions options;
  options.simulation.num_workers = 16;

  const auto partition = MRTriangles(g, 6, /*seed=*/2, options);
  t.AddRow()
      .Add("partition k=6")
      .Add(1)
      .Add(partition.metrics.pairs_shuffled)
      .Add(partition.metrics.max_reducer_input)
      .Add(partition.metrics.worker_loads.skew())
      .Add(partition.triangles.size());

  for (bool ordering : {true, false}) {
    const auto ni = mrcost::graph::MRTrianglesNodeIterator(g, ordering,
                                                           options);
    t.AddRow()
        .Add(ordering ? "node-iterator (deg-ordered)"
                      : "node-iterator (unordered)")
        .Add(2)
        .Add(ni.metrics.total_pairs())
        .Add(ni.metrics.max_reducer_input())
        .Add(ni.metrics.rounds[0].worker_loads.skew())
        .Add(ni.triangles.size());
  }
  t.Print(std::cout,
          "1-round vs 2-round triangle algorithms on a power-law graph "
          "(n=2000): degree ordering defeats the 'curse of the last "
          "reducer'");
}

void DedupAblation() {
  const auto g = CompleteGraph(40);
  Table t({"k", "with ownership rule", "without (duplicates)",
           "duplication factor"});
  for (int k : {2, 4, 8}) {
    const auto with_rule = MRTriangles(g, k, 21, {}, /*dedup_rule=*/true);
    const auto without = MRTriangles(g, k, 21, {}, /*dedup_rule=*/false);
    t.AddRow()
        .Add(k)
        .Add(with_rule.triangles.size())
        .Add(without.triangles.size())
        .Add(static_cast<double>(without.triangles.size()) /
             static_cast<double>(with_rule.triangles.size()));
  }
  t.Print(std::cout,
          "Ablation: emission-ownership rule (each triangle produced by "
          "exactly one reducer)");
}

}  // namespace

int main() {
  std::cout << "=== bench_triangle: triangle finding (Section 4) ===\n";
  DenseSweep();
  SparseSweep();
  OneVsTwoRounds();
  DedupAblation();
  return 0;
}
