#!/usr/bin/env python3
"""Aggregate BENCH_JSON lines into one BENCH_RESULTS.json document.

Usage: aggregate_bench.py OUT.json INPUT [INPUT...]

Each INPUT is a file of benchmark output: lines starting with
`BENCH_JSON` (the repo's machine-readable bench convention) are parsed,
everything else is ignored, so raw bench stdout and .jsonl files both
work. The output document groups records by source file:

    {"generated_by": "bench/aggregate_bench.py",
     "sources": {"shuffle.jsonl": [{...}, ...], ...},
     "total_records": N}

CI runs this over every bench log it produced and uploads the result as
one artifact, so a workflow run's numbers live in a single file instead
of scattered step logs. Exit is nonzero when an input is unreadable or
no records were found at all.
"""

import json
import os
import sys


def parse_lines(path):
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if line.startswith("BENCH_JSON"):
                line = line[len("BENCH_JSON"):].strip()
            elif not (line.startswith("{") and line.endswith("}")):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # non-bench JSON-ish log noise
            if isinstance(record, dict):
                records.append(record)
    return records


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    out_path, inputs = argv[1], argv[2:]
    sources = {}
    total = 0
    for path in inputs:
        try:
            records = parse_lines(path)
        except OSError as err:
            print(f"aggregate_bench: {err}", file=sys.stderr)
            return 1
        sources[os.path.basename(path)] = records
        total += len(records)
    if total == 0:
        print("aggregate_bench: no BENCH_JSON records found in any input",
              file=sys.stderr)
        return 1
    doc = {
        "generated_by": "bench/aggregate_bench.py",
        "sources": sources,
        "total_records": total,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"aggregate_bench: {total} records from {len(inputs)} files "
          f"-> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
